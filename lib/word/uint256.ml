(** 256-bit unsigned integers with EVM (mod 2^256) semantics.

    The EVM word type. Represented as eight 32-bit limbs carried in a
    plain [int array], little-endian limb order ([limb 0] is least
    significant); every limb is a non-negative immediate [int] below
    2^32, so arithmetic never touches boxed [int64]s. A word is one
    9-word heap block (header + 8 immediates) versus ~17 words for the
    previous 4×boxed-int64 record, and the destructive [_into] variants
    below let hot loops reuse caller-owned words with zero allocation.

    All arithmetic wraps modulo 2^256, matching the Yellow-Paper
    semantics of [ADD], [MUL], [SUB], etc. Signed operations ([sdiv],
    [smod], [slt], ...) interpret words as two's-complement, again per
    the Yellow Paper.

    Scratch-op contract: the [_into] operations mutate [dst] and may
    only target words the caller owns (obtained from [create] or
    [copy]). Words returned by the pure constructors — in particular
    [zero], [one], [max_value] and anything produced by
    [of_int]/[of_int64]/[of_bool]/[byte], which intern the 256
    single-byte constants process-wide — are shared and must never be
    mutated. All [_into] operations tolerate [dst] aliasing either
    operand (including all three being the same word). *)

type t = int array

let mask32 = 0xFFFFFFFF
let mask16 = 0xFFFF

let create () = Array.make 8 0

(* Unrolled instead of Array.copy/blit/fill: those are C calls, and
   at 8 immediate-int elements the call overhead dwarfs the stores.
   Every interpreter PUSH/DUP lands here. *)
let blit (src : t) (dst : t) =
  Array.unsafe_set dst 0 (Array.unsafe_get src 0);
  Array.unsafe_set dst 1 (Array.unsafe_get src 1);
  Array.unsafe_set dst 2 (Array.unsafe_get src 2);
  Array.unsafe_set dst 3 (Array.unsafe_get src 3);
  Array.unsafe_set dst 4 (Array.unsafe_get src 4);
  Array.unsafe_set dst 5 (Array.unsafe_get src 5);
  Array.unsafe_set dst 6 (Array.unsafe_get src 6);
  Array.unsafe_set dst 7 (Array.unsafe_get src 7)

let copy (a : t) : t =
  let d = Array.make 8 0 in
  blit a d;
  d

let set_zero (dst : t) =
  Array.unsafe_set dst 0 0;
  Array.unsafe_set dst 1 0;
  Array.unsafe_set dst 2 0;
  Array.unsafe_set dst 3 0;
  Array.unsafe_set dst 4 0;
  Array.unsafe_set dst 5 0;
  Array.unsafe_set dst 6 0;
  Array.unsafe_set dst 7 0

(* ------------------------------------------------------------------ *)
(* Interned single-byte constants                                      *)
(* ------------------------------------------------------------------ *)

(* The 256 single-byte words (PUSH1 immediates, comparison results,
   selector bytes, small counters) dominate word construction on every
   hot path; they are interned process-wide so [of_int]/[of_bool] on
   them allocate nothing. These are shared: never pass them to an
   [_into] destination. *)
let small : t array =
  Array.init 256 (fun i ->
      let w = Array.make 8 0 in
      w.(0) <- i;
      w)

let zero = small.(0)
let one = small.(1)

let max_value : t = Array.make 8 mask32

let of_int (x : int) : t =
  if x < 0 then invalid_arg "Uint256.of_int: negative"
  else if x < 256 then Array.unsafe_get small x
  else begin
    let w = Array.make 8 0 in
    w.(0) <- x land mask32;
    w.(1) <- x lsr 32;
    w
  end

let of_int64 (x : int64) : t =
  if Int64.compare x 0L >= 0 && Int64.compare x 256L < 0 then
    Array.unsafe_get small (Int64.to_int x)
  else begin
    let w = Array.make 8 0 in
    w.(0) <- Int64.to_int (Int64.logand x 0xFFFFFFFFL);
    w.(1) <- Int64.to_int (Int64.shift_right_logical x 32);
    w
  end

let of_bool b = if b then one else zero

let set_int (dst : t) (x : int) =
  if x < 0 then invalid_arg "Uint256.set_int: negative";
  set_zero dst;
  dst.(0) <- x land mask32;
  dst.(1) <- x lsr 32

let set_bool (dst : t) (b : bool) =
  set_zero dst;
  if b then dst.(0) <- 1

(* int64-interop shims, kept for the legacy [make]/[limb] API (tests
   and conversions only — not on any hot path). *)
let make (l0 : int64) (l1 : int64) (l2 : int64) (l3 : int64) : t =
  let w = Array.make 8 0 in
  let set i (x : int64) =
    w.(2 * i) <- Int64.to_int (Int64.logand x 0xFFFFFFFFL);
    w.((2 * i) + 1) <- Int64.to_int (Int64.shift_right_logical x 32)
  in
  set 0 l0; set 1 l1; set 2 l2; set 3 l3;
  w

let limb i (x : t) : int64 =
  if i < 0 || i > 3 then invalid_arg "Uint256.limb";
  Int64.logor
    (Int64.of_int x.(2 * i))
    (Int64.shift_left (Int64.of_int x.((2 * i) + 1)) 32)

(* ------------------------------------------------------------------ *)
(* Comparison / hashing                                                *)
(* ------------------------------------------------------------------ *)

let equal (a : t) (b : t) =
  a == b
  || (Array.unsafe_get a 0 = Array.unsafe_get b 0
      && Array.unsafe_get a 1 = Array.unsafe_get b 1
      && Array.unsafe_get a 2 = Array.unsafe_get b 2
      && Array.unsafe_get a 3 = Array.unsafe_get b 3
      && Array.unsafe_get a 4 = Array.unsafe_get b 4
      && Array.unsafe_get a 5 = Array.unsafe_get b 5
      && Array.unsafe_get a 6 = Array.unsafe_get b 6
      && Array.unsafe_get a 7 = Array.unsafe_get b 7)

let is_zero (a : t) =
  Array.unsafe_get a 0 = 0
  && Array.unsafe_get a 1 = 0
  && Array.unsafe_get a 2 = 0
  && Array.unsafe_get a 3 = 0
  && Array.unsafe_get a 4 = 0
  && Array.unsafe_get a 5 = 0
  && Array.unsafe_get a 6 = 0
  && Array.unsafe_get a 7 = 0

(* Limbs are non-negative ints < 2^32, so limb subtraction can't
   overflow and its sign is the unsigned limb order. Unrolled (no
   local recursive function: its closure would allocate on what is a
   hot comparison path). *)
let compare (a : t) (b : t) =
  let d = Array.unsafe_get a 7 - Array.unsafe_get b 7 in
  if d <> 0 then d
  else
    let d = Array.unsafe_get a 6 - Array.unsafe_get b 6 in
    if d <> 0 then d
    else
      let d = Array.unsafe_get a 5 - Array.unsafe_get b 5 in
      if d <> 0 then d
      else
        let d = Array.unsafe_get a 4 - Array.unsafe_get b 4 in
        if d <> 0 then d
        else
          let d = Array.unsafe_get a 3 - Array.unsafe_get b 3 in
          if d <> 0 then d
          else
            let d = Array.unsafe_get a 2 - Array.unsafe_get b 2 in
            if d <> 0 then d
            else
              let d = Array.unsafe_get a 1 - Array.unsafe_get b 1 in
              if d <> 0 then d
              else Array.unsafe_get a 0 - Array.unsafe_get b 0

let lt a b = compare a b < 0
let gt a b = compare a b > 0
let le a b = compare a b <= 0
let ge a b = compare a b >= 0

(* Multiply-xor rounds over all eight limbs with a final avalanche, so
   every input bit disturbs the low hash bits that [Hashtbl] buckets
   on. The previous hash only spread limb bits upward (plain
   multiplies), so storage keys differing in high limb bits collided
   systematically in the low bits. *)
let hash (x : t) =
  let h = ref 0x2545F491 in
  for i = 0 to 7 do
    let m = (!h lxor Array.unsafe_get x i) * 0x9E3779B1 in
    h := m lxor (m lsr 16)
  done;
  let h = !h * 0x85EBCA77 in
  (h lxor (h lsr 13)) land max_int

(* ------------------------------------------------------------------ *)
(* Addition / subtraction with carry propagation                       *)
(* ------------------------------------------------------------------ *)

(* Fully unrolled; every intermediate sum fits an immediate int
   (< 2^33). All reads complete before any write, so [dst] may alias
   either operand. *)
let add_into (dst : t) (a : t) (b : t) =
  let s0 = Array.unsafe_get a 0 + Array.unsafe_get b 0 in
  let s1 = Array.unsafe_get a 1 + Array.unsafe_get b 1 + (s0 lsr 32) in
  let s2 = Array.unsafe_get a 2 + Array.unsafe_get b 2 + (s1 lsr 32) in
  let s3 = Array.unsafe_get a 3 + Array.unsafe_get b 3 + (s2 lsr 32) in
  let s4 = Array.unsafe_get a 4 + Array.unsafe_get b 4 + (s3 lsr 32) in
  let s5 = Array.unsafe_get a 5 + Array.unsafe_get b 5 + (s4 lsr 32) in
  let s6 = Array.unsafe_get a 6 + Array.unsafe_get b 6 + (s5 lsr 32) in
  let s7 = Array.unsafe_get a 7 + Array.unsafe_get b 7 + (s6 lsr 32) in
  Array.unsafe_set dst 0 (s0 land mask32);
  Array.unsafe_set dst 1 (s1 land mask32);
  Array.unsafe_set dst 2 (s2 land mask32);
  Array.unsafe_set dst 3 (s3 land mask32);
  Array.unsafe_set dst 4 (s4 land mask32);
  Array.unsafe_set dst 5 (s5 land mask32);
  Array.unsafe_set dst 6 (s6 land mask32);
  Array.unsafe_set dst 7 (s7 land mask32)

(* [d asr 32] is -1 on borrow and 0 otherwise. *)
let sub_into (dst : t) (a : t) (b : t) =
  let d0 = Array.unsafe_get a 0 - Array.unsafe_get b 0 in
  let d1 = Array.unsafe_get a 1 - Array.unsafe_get b 1 + (d0 asr 32) in
  let d2 = Array.unsafe_get a 2 - Array.unsafe_get b 2 + (d1 asr 32) in
  let d3 = Array.unsafe_get a 3 - Array.unsafe_get b 3 + (d2 asr 32) in
  let d4 = Array.unsafe_get a 4 - Array.unsafe_get b 4 + (d3 asr 32) in
  let d5 = Array.unsafe_get a 5 - Array.unsafe_get b 5 + (d4 asr 32) in
  let d6 = Array.unsafe_get a 6 - Array.unsafe_get b 6 + (d5 asr 32) in
  let d7 = Array.unsafe_get a 7 - Array.unsafe_get b 7 + (d6 asr 32) in
  Array.unsafe_set dst 0 (d0 land mask32);
  Array.unsafe_set dst 1 (d1 land mask32);
  Array.unsafe_set dst 2 (d2 land mask32);
  Array.unsafe_set dst 3 (d3 land mask32);
  Array.unsafe_set dst 4 (d4 land mask32);
  Array.unsafe_set dst 5 (d5 land mask32);
  Array.unsafe_set dst 6 (d6 land mask32);
  Array.unsafe_set dst 7 (d7 land mask32)

let add a b = let d = Array.make 8 0 in add_into d a b; d
let sub a b = let d = Array.make 8 0 in sub_into d a b; d
let succ a = add a one
let pred a = sub a one
let neg a = sub zero a

(* ------------------------------------------------------------------ *)
(* Multiplication                                                      *)
(* ------------------------------------------------------------------ *)

(* 32x32-bit limb products would overflow the 63-bit native int, so
   multiplication runs on 16-bit halves: column sums are at most
   16·(2^16-1)^2 + carry < 2^37 and carries stay below 2^21, all
   comfortably immediate. Both operands' halves are copied into a
   per-domain scratch first, making [dst] aliasing safe and the
   scratch race-free across the scheduler's worker domains. *)
let mul_scratch : int array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make 32 0)

let mul_into (dst : t) (a : t) (b : t) =
  let h = Domain.DLS.get mul_scratch in
  for i = 0 to 7 do
    let ai = Array.unsafe_get a i and bi = Array.unsafe_get b i in
    Array.unsafe_set h (2 * i) (ai land mask16);
    Array.unsafe_set h ((2 * i) + 1) (ai lsr 16);
    Array.unsafe_set h (16 + (2 * i)) (bi land mask16);
    Array.unsafe_set h (16 + (2 * i) + 1) (bi lsr 16)
  done;
  let carry = ref 0 in
  for k = 0 to 7 do
    let lo_k = 2 * k in
    let hi_k = lo_k + 1 in
    let s = ref !carry in
    for i = 0 to lo_k do
      s := !s + (Array.unsafe_get h i * Array.unsafe_get h (16 + lo_k - i))
    done;
    let lo = !s land mask16 in
    let s2 = ref (!s lsr 16) in
    for i = 0 to hi_k do
      s2 := !s2 + (Array.unsafe_get h i * Array.unsafe_get h (16 + hi_k - i))
    done;
    carry := !s2 lsr 16;
    Array.unsafe_set dst k (lo lor ((!s2 land mask16) lsl 16))
  done

let mul a b = let d = Array.make 8 0 in mul_into d a b; d

(* ------------------------------------------------------------------ *)
(* Shifts and bitwise operations                                       *)
(* ------------------------------------------------------------------ *)

let logand_into (dst : t) (a : t) (b : t) =
  for i = 0 to 7 do
    Array.unsafe_set dst i (Array.unsafe_get a i land Array.unsafe_get b i)
  done

let logor_into (dst : t) (a : t) (b : t) =
  for i = 0 to 7 do
    Array.unsafe_set dst i (Array.unsafe_get a i lor Array.unsafe_get b i)
  done

let logxor_into (dst : t) (a : t) (b : t) =
  for i = 0 to 7 do
    Array.unsafe_set dst i (Array.unsafe_get a i lxor Array.unsafe_get b i)
  done

let lognot_into (dst : t) (a : t) =
  for i = 0 to 7 do
    Array.unsafe_set dst i (Array.unsafe_get a i lxor mask32)
  done

let logand a b = let d = Array.make 8 0 in logand_into d a b; d
let logor a b = let d = Array.make 8 0 in logor_into d a b; d
let logxor a b = let d = Array.make 8 0 in logxor_into d a b; d
let lognot a = let d = Array.make 8 0 in lognot_into d a; d

(* Descending write order never clobbers a yet-unread source limb
   (reads at index <= write index), so [dst] may alias [a]. *)
let shift_left_into (dst : t) (a : t) n =
  if n < 0 then invalid_arg "shift_left"
  else if n = 0 then (if dst != a then blit a dst)
  else if n >= 256 then set_zero dst
  else begin
    let word = n lsr 5 and bits = n land 31 in
    for i = 7 downto 0 do
      let src = i - word in
      let v =
        if src < 0 then 0
        else
          let v = (Array.unsafe_get a src lsl bits) land mask32 in
          if bits > 0 && src >= 1 then
            v lor (Array.unsafe_get a (src - 1) lsr (32 - bits))
          else v
      in
      Array.unsafe_set dst i v
    done
  end

(* Ascending write order: reads at index >= write index. *)
let shift_right_into (dst : t) (a : t) n =
  if n < 0 then invalid_arg "shift_right"
  else if n = 0 then (if dst != a then blit a dst)
  else if n >= 256 then set_zero dst
  else begin
    let word = n lsr 5 and bits = n land 31 in
    for i = 0 to 7 do
      let src = i + word in
      let v =
        if src > 7 then 0
        else
          let v = Array.unsafe_get a src lsr bits in
          if bits > 0 && src + 1 <= 7 then
            v lor ((Array.unsafe_get a (src + 1) lsl (32 - bits)) land mask32)
          else v
      in
      Array.unsafe_set dst i v
    done
  end

let is_neg (a : t) = a.(7) land 0x80000000 <> 0

let shift_right_arith_into (dst : t) (a : t) n =
  if n < 0 then invalid_arg "shift_right_arith"
  else begin
    let neg = is_neg a in
    if n >= 256 then
      if neg then Array.fill dst 0 8 mask32 else set_zero dst
    else begin
      shift_right_into dst a n;
      if neg && n > 0 then begin
        (* fill the top n bits with ones *)
        let m = 256 - n in
        let j = m lsr 5 and b = m land 31 in
        dst.(j) <- dst.(j) lor ((mask32 lsl b) land mask32);
        for k = j + 1 to 7 do
          dst.(k) <- mask32
        done
      end
    end
  end

let shift_left a n =
  if n = 0 then a
  else let d = Array.make 8 0 in shift_left_into d a n; d

let shift_right a n =
  if n = 0 then a
  else let d = Array.make 8 0 in shift_right_into d a n; d

let shift_right_arith a n =
  if n = 0 then a
  else let d = Array.make 8 0 in shift_right_arith_into d a n; d

let bit (a : t) n =
  if n < 0 || n > 255 then false
  else (Array.unsafe_get a (n lsr 5) lsr (n land 31)) land 1 = 1

let set_bit (a : t) n =
  if n < 0 || n > 255 then a
  else begin
    let d = copy a in
    d.(n lsr 5) <- d.(n lsr 5) lor (1 lsl (n land 31));
    d
  end

(* Number of significant bits (0 for zero). *)
let num_bits (a : t) =
  let rec top i = if i < 0 then -1 else if a.(i) <> 0 then i else top (i - 1) in
  let i = top 7 in
  if i < 0 then 0
  else begin
    let l = a.(i) in
    let rec msb b = if (l lsr b) land 1 = 1 then b + 1 else msb (b - 1) in
    (i * 32) + msb 31
  end

(* ------------------------------------------------------------------ *)
(* Division / modulo (EVM: x / 0 = 0, x mod 0 = 0)                     *)
(* ------------------------------------------------------------------ *)

let divmod (a : t) (b : t) =
  if is_zero b then (zero, zero)
  else if compare a b < 0 then (zero, a)
  else begin
    (* Binary long division on two owned words. The remainder never
       overflows the left shift: before processing bit i it equals
       (a >> (i+1)) mod b <= a >> 1 < 2^255. *)
    let q = Array.make 8 0 and r = Array.make 8 0 in
    let n = num_bits a in
    for i = n - 1 downto 0 do
      shift_left_into r r 1;
      if bit a i then r.(0) <- r.(0) lor 1;
      if compare r b >= 0 then begin
        sub_into r r b;
        q.(i lsr 5) <- q.(i lsr 5) lor (1 lsl (i land 31))
      end
    done;
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Signed division per EVM SDIV: truncate toward zero; SMOD takes the
   sign of the dividend. *)
let sdiv a b =
  if is_zero b then zero
  else
    let na = is_neg a and nb = is_neg b in
    let ua = if na then neg a else a in
    let ub = if nb then neg b else b in
    let q = div ua ub in
    if na <> nb then neg q else q

let smod a b =
  if is_zero b then zero
  else
    let na = is_neg a in
    let ua = if na then neg a else a in
    let ub = if is_neg b then neg b else b in
    let r = rem ua ub in
    if na then neg r else r

let slt a b =
  match (is_neg a, is_neg b) with
  | true, false -> true
  | false, true -> false
  | _ -> lt a b

let sgt a b = slt b a

(* addmod / mulmod need intermediate precision beyond 256 bits; we use
   the identity on wide little-endian 32-bit limb arrays. *)

(* Reduce a wide little-endian limb array modulo [m]. Binary method
   over the full width. [shift_left_into] drops the top bit, so the
   bit shifted out of position 255 is tracked explicitly: when set, r
   conceptually equals 2^256 + r', and subtracting m once is addition
   of (2^256 - m). *)
let rem_wide (limbs : int array) (m : t) =
  if is_zero m then zero
  else begin
    let nbits = Array.length limbs * 32 in
    let r = Array.make 8 0 in
    let neg_m = Array.make 8 0 in
    sub_into neg_m zero m;
    for i = nbits - 1 downto 0 do
      let carry = r.(7) land 0x80000000 <> 0 in
      shift_left_into r r 1;
      if (limbs.(i lsr 5) lsr (i land 31)) land 1 = 1 then r.(0) <- r.(0) lor 1;
      (* If a bit was shifted out, r conceptually = 2^256 + r'. Since
         m < 2^256, subtracting m once from (2^256 + r') equals
         (r' + (2^256 - m)) which is adding neg_m. *)
      if carry then add_into r r neg_m;
      if compare r m >= 0 then sub_into r r m;
      (* One more conditional subtract covers the carry case where
         r' + (2^256 - m) may still be >= m. *)
      if compare r m >= 0 then sub_into r r m
    done;
    r
  end

let addmod (a : t) (b : t) m =
  if is_zero m then zero
  else begin
    (* compute a+b as a 9-limb value *)
    let w = Array.make 9 0 in
    let c = ref 0 in
    for i = 0 to 7 do
      let s = a.(i) + b.(i) + !c in
      w.(i) <- s land mask32;
      c := s lsr 32
    done;
    w.(8) <- !c;
    rem_wide w m
  end

let mulmod (a : t) (b : t) m =
  if is_zero m then zero
  else begin
    (* full 512-bit product via 16-bit halves, as in [mul_into] *)
    let ha = Array.make 16 0 and hb = Array.make 16 0 in
    for i = 0 to 7 do
      ha.(2 * i) <- a.(i) land mask16;
      ha.((2 * i) + 1) <- a.(i) lsr 16;
      hb.(2 * i) <- b.(i) land mask16;
      hb.((2 * i) + 1) <- b.(i) lsr 16
    done;
    let w = Array.make 16 0 in
    let carry = ref 0 in
    for k = 0 to 15 do
      let lo_k = 2 * k in
      let hi_k = lo_k + 1 in
      let s = ref !carry in
      for i = max 0 (lo_k - 15) to min 15 lo_k do
        s := !s + (ha.(i) * hb.(lo_k - i))
      done;
      let lo = !s land mask16 in
      let s2 = ref (!s lsr 16) in
      for i = max 0 (hi_k - 15) to min 15 hi_k do
        s2 := !s2 + (ha.(i) * hb.(hi_k - i))
      done;
      carry := !s2 lsr 16;
      w.(k) <- lo lor ((!s2 land mask16) lsl 16)
    done;
    rem_wide w m
  end

let exp base e =
  (* Square-and-multiply modulo 2^256 (natural wrap) on owned words;
     [mul_into] tolerates full aliasing. *)
  let result = copy one and b = copy base in
  let n = num_bits e in
  for i = 0 to n - 1 do
    if bit e i then mul_into result result b;
    if i < n - 1 then mul_into b b b
  done;
  result

(* EVM SIGNEXTEND: b identifies the byte position of the sign bit. *)
let signextend bpos x =
  if compare bpos (of_int 31) >= 0 then x
  else begin
    let b = bpos.(0) in
    let sign_bit = (b * 8) + 7 in
    let r = copy x in
    let m = sign_bit + 1 in
    let j = m lsr 5 and off = m land 31 in
    if bit x sign_bit then begin
      r.(j) <- r.(j) lor ((mask32 lsl off) land mask32);
      for k = j + 1 to 7 do r.(k) <- mask32 done
    end
    else begin
      r.(j) <- r.(j) land ((1 lsl off) - 1);
      for k = j + 1 to 7 do r.(k) <- 0 done
    end;
    r
  end

(* EVM BYTE: extract the i-th byte, counting from the most significant.
   Always lands in the interned table. *)
let byte i (x : t) =
  if compare i (of_int 31) > 0 then zero
  else begin
    let p = 31 - i.(0) in
    Array.unsafe_get small ((x.(p lsr 2) lsr ((p land 3) * 8)) land 0xFF)
  end

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let to_int_opt (a : t) =
  if
    a.(1) <= 0x3FFFFFFF
    && a.(2) = 0 && a.(3) = 0 && a.(4) = 0 && a.(5) = 0 && a.(6) = 0
    && a.(7) = 0
  then Some (a.(0) lor (a.(1) lsl 32))
  else None

let to_int a =
  match to_int_opt a with
  | Some i -> i
  | None -> invalid_arg "Uint256.to_int: out of range"

let fits_int a = to_int_opt a <> None

let to_int64_trunc (a : t) =
  Int64.logor (Int64.of_int a.(0)) (Int64.shift_left (Int64.of_int a.(1)) 32)

(** Big-endian 32-byte store into a caller-provided buffer. *)
let store_be (src : t) (b : Bytes.t) (off : int) =
  for i = 0 to 7 do
    Bytes.set_int32_be b (off + 28 - (4 * i)) (Int32.of_int (Array.unsafe_get src i))
  done

(** Big-endian 32-byte load from a buffer into a caller-owned word. *)
let load_be_into (dst : t) (b : Bytes.t) (off : int) =
  for i = 0 to 7 do
    Array.unsafe_set dst i
      (Int32.to_int (Bytes.get_int32_be b (off + 28 - (4 * i))) land mask32)
  done

(** Big-endian load from a string with implicit zero padding past the
    end (CALLDATALOAD semantics): byte k of the word is [s.[off+k]] if
    in range, else 0. *)
let load_be_padded (dst : t) (s : string) (off : int) =
  set_zero dst;
  let n = String.length s in
  for k = 0 to 31 do
    let p = off + k in
    if p >= 0 && p < n then begin
      let v = Char.code (String.unsafe_get s p) in
      let bitpos = (31 - k) * 8 in
      let j = bitpos lsr 5 in
      Array.unsafe_set dst j (Array.unsafe_get dst j lor (v lsl (bitpos land 31)))
    end
  done

(** Big-endian 32-byte serialization (the EVM memory/storage format). *)
let to_bytes (a : t) =
  let b = Bytes.create 32 in
  store_be a b 0;
  Bytes.unsafe_to_string b

let of_bytes (s : string) : t =
  (* Interprets [s] as a big-endian number; pads on the left if shorter
     than 32 bytes, uses the last 32 bytes if longer. *)
  let n = String.length s in
  let s = if n > 32 then String.sub s (n - 32) 32 else s in
  let n = String.length s in
  let b = Bytes.make 32 '\000' in
  Bytes.blit_string s 0 b (32 - n) n;
  let w = Array.make 8 0 in
  load_be_into w b 0;
  if
    w.(0) < 256
    && w.(1) = 0 && w.(2) = 0 && w.(3) = 0 && w.(4) = 0 && w.(5) = 0
    && w.(6) = 0 && w.(7) = 0
  then Array.unsafe_get small w.(0)
  else w

let to_hex a =
  let s = to_bytes a in
  let buf = Buffer.create 66 in
  Buffer.add_string buf "0x";
  let started = ref false in
  String.iter
    (fun c ->
      let v = Char.code c in
      if v <> 0 || !started then begin
        if !started then Buffer.add_string buf (Printf.sprintf "%02x" v)
        else begin
          Buffer.add_string buf (Printf.sprintf "%x" v);
          started := true
        end
      end)
    s;
  if not !started then "0x0" else Buffer.contents buf

let to_hex_padded a =
  let s = to_bytes a in
  let buf = Buffer.create 66 in
  Buffer.add_string buf "0x";
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
    then String.sub s 2 (String.length s - 2)
    else s
  in
  if String.length s = 0 then invalid_arg "Uint256.of_hex: empty";
  if String.length s > 64 then invalid_arg "Uint256.of_hex: too long";
  let v = Array.make 8 0 in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Uint256.of_hex: bad digit"
      in
      shift_left_into v v 4;
      v.(0) <- v.(0) lor d)
    s;
  v

let of_decimal s =
  if String.length s = 0 then invalid_arg "Uint256.of_decimal: empty";
  let ten = of_int 10 in
  let v = Array.make 8 0 in
  let d = Array.make 8 0 in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          mul_into v v ten;
          set_int d (Char.code c - Char.code '0');
          add_into v v d
      | '_' -> ()
      | _ -> invalid_arg "Uint256.of_decimal: bad digit")
    s;
  v

let of_string s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    of_hex s
  else of_decimal s

let to_decimal a =
  if is_zero a then "0"
  else begin
    let ten = of_int 10 in
    let buf = Buffer.create 80 in
    let v = ref a in
    while not (is_zero !v) do
      let q, r = divmod !v ten in
      Buffer.add_char buf (Char.chr (Char.code '0' + to_int r));
      v := q
    done;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let to_string = to_hex
let pp fmt a = Format.pp_print_string fmt (to_hex a)

(* Truthiness per EVM JUMPI semantics. *)
let to_bool a = not (is_zero a)
