(** 256-bit unsigned integers with EVM (mod 2^256) semantics.

    The EVM word type. All arithmetic wraps modulo 2^256, matching the
    Yellow-Paper semantics of [ADD], [MUL], [SUB], etc. Signed
    operations ([sdiv], [smod], [slt], ...) interpret words as
    two's-complement. Division and modulo by zero return zero (EVM
    convention), they do not raise.

    Words are unboxed [int]-limb vectors (8×32-bit limbs), so the pure
    operations allocate exactly one small block for their result and
    the destructive [_into] variants allocate nothing.

    {b Scratch-op contract.} The [_into] operations mutate their first
    argument ([dst]) in place and may only target words the caller
    {e owns} — words obtained from [create] or [copy]. Words returned
    by any pure operation are potentially {e shared}: the 256
    single-byte constants are interned process-wide (so [of_int 5] is
    the same physical word everywhere) and pure operations may return
    one of their arguments. Mutating a shared word corrupts unrelated
    state silently; never pass one as [dst]. Every [_into] operation
    tolerates [dst] aliasing any of its word operands, including all
    of them being the same word. *)

type t

val zero : t
val one : t
val max_value : t

(** {1 Construction} *)

val make : int64 -> int64 -> int64 -> int64 -> t
(** [make l0 l1 l2 l3] builds a word from four little-endian 64-bit
    limbs ([l0] least significant). *)

val of_int : int -> t
(** @raise Invalid_argument on negative input. *)

val of_int64 : int64 -> t
(** Interprets the argument as unsigned. *)

val of_string : string -> t
(** Accepts [0x]-prefixed hex or decimal. *)

val of_hex : string -> t
val of_decimal : string -> t

val of_bytes : string -> t
(** Big-endian bytes; shorter strings are left-padded with zeros,
    longer ones keep their last 32 bytes. *)

val of_bool : bool -> t
(** [true] is [one], [false] is [zero] (EVM comparison results). *)

(** {1 Inspection} *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Unsigned total order. *)

val is_zero : t -> bool
val to_bool : t -> bool
(** Truthiness per [JUMPI]: anything nonzero is true. *)

val is_neg : t -> bool
(** Top bit set (negative as two's-complement). *)

val hash : t -> int
val limb : int -> t -> int64
val num_bits : t -> int
(** Position of the highest set bit plus one; 0 for zero. *)

val bit : t -> int -> bool
val fits_int : t -> bool
val to_int : t -> int
(** @raise Invalid_argument when the value exceeds [max_int]. *)

val to_int_opt : t -> int option
val to_int64_trunc : t -> int64
(** Low 64 bits. *)

(** {1 Conversion} *)

val to_bytes : t -> string
(** Exactly 32 big-endian bytes (the EVM memory/storage format). *)

val to_hex : t -> string
(** Minimal [0x...] form. *)

val to_hex_padded : t -> string
(** Always 64 hex digits. *)

val to_decimal : t -> string
val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Arithmetic (mod 2^256)} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** [(quotient, remainder)]; both zero when the divisor is zero. *)

val div : t -> t -> t
val rem : t -> t -> t
val exp : t -> t -> t
(** Square-and-multiply; wraps naturally. [exp zero zero = one]. *)

val addmod : t -> t -> t -> t
(** [(a + b) mod m] computed at 512-bit intermediate precision. *)

val mulmod : t -> t -> t -> t
(** [(a * b) mod m] computed at 512-bit intermediate precision. *)

(** {1 Signed operations (two's-complement)} *)

val sdiv : t -> t -> t
(** Truncates toward zero, per EVM [SDIV]. *)

val smod : t -> t -> t
(** Result takes the dividend's sign, per EVM [SMOD]. *)

val slt : t -> t -> bool
val sgt : t -> t -> bool
val signextend : t -> t -> t
(** [signextend b x]: sign-extend [x] from the byte at position [b]
    (EVM [SIGNEXTEND]). *)

(** {1 Comparisons (unsigned)} *)

val lt : t -> t -> bool
val gt : t -> t -> bool
val le : t -> t -> bool
val ge : t -> t -> bool

(** {1 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Logical shift. *)

val shift_right_arith : t -> int -> t
(** Arithmetic shift (EVM [SAR]). *)

val set_bit : t -> int -> t
val byte : t -> t -> t
(** [byte i x]: the [i]-th byte of [x] counting from the most
    significant (EVM [BYTE]); zero when [i > 31]. *)

(** {1 Scratch operations (allocation-free)}

    All functions below follow the scratch-op contract from the module
    header: [dst] must be caller-owned ([create]/[copy]); aliasing
    [dst] with any operand is allowed. *)

val create : unit -> t
(** A fresh owned word, initialized to zero. *)

val copy : t -> t
(** A fresh owned word with the same value. *)

val blit : t -> t -> unit
(** [blit src dst] copies the value of [src] into [dst]. *)

val set_zero : t -> unit
val set_int : t -> int -> unit
(** @raise Invalid_argument on negative input. *)

val set_bool : t -> bool -> unit

val add_into : t -> t -> t -> unit
(** [add_into dst a b] stores [a + b] (mod 2^256) in [dst]. *)

val sub_into : t -> t -> t -> unit
val mul_into : t -> t -> t -> unit
val logand_into : t -> t -> t -> unit
val logor_into : t -> t -> t -> unit
val logxor_into : t -> t -> t -> unit
val lognot_into : t -> t -> unit
val shift_left_into : t -> t -> int -> unit
val shift_right_into : t -> t -> int -> unit
val shift_right_arith_into : t -> t -> int -> unit

val load_be_into : t -> Bytes.t -> int -> unit
(** [load_be_into dst b off] reads 32 big-endian bytes of [b] at
    [off]. The range must be in bounds. *)

val store_be : t -> Bytes.t -> int -> unit
(** [store_be src b off] writes [src] as 32 big-endian bytes into [b]
    at [off]. The range must be in bounds. *)

val load_be_padded : t -> string -> int -> unit
(** [load_be_padded dst s off] reads up to 32 big-endian bytes of [s]
    starting at [off], zero-padding past the end of [s] (EVM
    [CALLDATALOAD] semantics). [off] may exceed the length of [s]. *)
