(** Reference implementation of [Uint256], retained for differential
    testing and old-vs-new microbenchmarks.

    This is the pre-PR-10 representation: four boxed [int64] limbs in a
    record, little-endian limb order. Functionally complete but
    allocation-heavy; the production module [Uint256] carries the same
    semantics on unboxed [int] limbs. Do not use outside tests/bench. *)

type t = { l0 : int64; l1 : int64; l2 : int64; l3 : int64 }

let zero = { l0 = 0L; l1 = 0L; l2 = 0L; l3 = 0L }
let one = { l0 = 1L; l1 = 0L; l2 = 0L; l3 = 0L }
let max_value = { l0 = -1L; l1 = -1L; l2 = -1L; l3 = -1L }

let limb i x =
  match i with
  | 0 -> x.l0
  | 1 -> x.l1
  | 2 -> x.l2
  | 3 -> x.l3
  | _ -> invalid_arg "Uint256.limb"

let make l0 l1 l2 l3 = { l0; l1; l2; l3 }

let of_int64 (x : int64) = { zero with l0 = x }

let of_int (x : int) =
  if x < 0 then invalid_arg "Uint256.of_int: negative"
  else of_int64 (Int64.of_int x)

let equal a b =
  Int64.equal a.l0 b.l0 && Int64.equal a.l1 b.l1 && Int64.equal a.l2 b.l2
  && Int64.equal a.l3 b.l3

let is_zero a = equal a zero

(* Unsigned comparison of int64 values. *)
let ucmp64 (a : int64) (b : int64) = Int64.unsigned_compare a b

let compare a b =
  let c = ucmp64 a.l3 b.l3 in
  if c <> 0 then c
  else
    let c = ucmp64 a.l2 b.l2 in
    if c <> 0 then c
    else
      let c = ucmp64 a.l1 b.l1 in
      if c <> 0 then c else ucmp64 a.l0 b.l0

let lt a b = compare a b < 0
let gt a b = compare a b > 0
let le a b = compare a b <= 0
let ge a b = compare a b >= 0

let hash (x : t) =
  Int64.to_int x.l0
  lxor (Int64.to_int x.l1 * 65599)
  lxor (Int64.to_int x.l2 * 2654435761)
  lxor (Int64.to_int x.l3 * 40503)

(* ------------------------------------------------------------------ *)
(* Addition / subtraction with carry propagation                       *)
(* ------------------------------------------------------------------ *)

(* Add two unsigned 64-bit values plus carry-in; return (sum, carry).
   Carry = 1 iff a + b + cin >= 2^64: c1 from a+b, c2 from (a+b)+cin;
   at most one of the two additions can wrap. *)
let add64_carry (a : int64) (b : int64) (cin : int64) =
  let ab = Int64.add a b in
  let c1 = if ucmp64 ab a < 0 then 1L else 0L in
  let s = Int64.add ab cin in
  let c2 = if ucmp64 s ab < 0 then 1L else 0L in
  (s, Int64.add c1 c2)

let add a b =
  let l0, c0 = add64_carry a.l0 b.l0 0L in
  let l1, c1 = add64_carry a.l1 b.l1 c0 in
  let l2, c2 = add64_carry a.l2 b.l2 c1 in
  let l3, _ = add64_carry a.l3 b.l3 c2 in
  { l0; l1; l2; l3 }

(* Subtract with borrow: a - b - bin, returning (diff, borrow). *)
let sub64_borrow (a : int64) (b : int64) (bin : int64) =
  let ab = Int64.sub a b in
  let b1 = if ucmp64 a b < 0 then 1L else 0L in
  let d = Int64.sub ab bin in
  let b2 = if ucmp64 ab bin < 0 then 1L else 0L in
  (d, Int64.add b1 b2)

let sub a b =
  let l0, c0 = sub64_borrow a.l0 b.l0 0L in
  let l1, c1 = sub64_borrow a.l1 b.l1 c0 in
  let l2, c2 = sub64_borrow a.l2 b.l2 c1 in
  let l3, _ = sub64_borrow a.l3 b.l3 c2 in
  { l0; l1; l2; l3 }

let succ a = add a one
let pred a = sub a one
let neg a = sub zero a

(* ------------------------------------------------------------------ *)
(* Multiplication                                                      *)
(* ------------------------------------------------------------------ *)

let lo32 (x : int64) = Int64.logand x 0xFFFFFFFFL
let hi32 (x : int64) = Int64.shift_right_logical x 32

(* Full 64x64 -> 128 multiply, returning (lo, hi). *)
let mul64_full (a : int64) (b : int64) =
  let al = lo32 a and ah = hi32 a and bl = lo32 b and bh = hi32 b in
  let ll = Int64.mul al bl in
  let lh = Int64.mul al bh in
  let hl = Int64.mul ah bl in
  let hh = Int64.mul ah bh in
  (* lo = ll + (lh << 32) + (hl << 32); collect carries into hi. *)
  let mid = Int64.add (Int64.add (hi32 ll) (lo32 lh)) (lo32 hl) in
  let lo = Int64.logor (lo32 ll) (Int64.shift_left (lo32 mid) 32) in
  let hi =
    Int64.add (Int64.add hh (Int64.add (hi32 lh) (hi32 hl))) (hi32 mid)
  in
  (lo, hi)

let mul a b =
  (* Schoolbook over 4 limbs, keeping only the low 4 result limbs. *)
  let r = Array.make 4 0L in
  let al = [| a.l0; a.l1; a.l2; a.l3 |] in
  let bl = [| b.l0; b.l1; b.l2; b.l3 |] in
  for i = 0 to 3 do
    let carry = ref 0L in
    for j = 0 to 3 - i do
      let k = i + j in
      if k < 4 then begin
        let lo, hi = mul64_full al.(i) bl.(j) in
        let s1, c1 = add64_carry r.(k) lo 0L in
        let s2, c2 = add64_carry s1 !carry 0L in
        r.(k) <- s2;
        carry := Int64.add hi (Int64.add c1 c2)
      end
    done
  done;
  { l0 = r.(0); l1 = r.(1); l2 = r.(2); l3 = r.(3) }

(* ------------------------------------------------------------------ *)
(* Shifts and bitwise operations                                       *)
(* ------------------------------------------------------------------ *)

let logand a b =
  { l0 = Int64.logand a.l0 b.l0; l1 = Int64.logand a.l1 b.l1;
    l2 = Int64.logand a.l2 b.l2; l3 = Int64.logand a.l3 b.l3 }

let logor a b =
  { l0 = Int64.logor a.l0 b.l0; l1 = Int64.logor a.l1 b.l1;
    l2 = Int64.logor a.l2 b.l2; l3 = Int64.logor a.l3 b.l3 }

let logxor a b =
  { l0 = Int64.logxor a.l0 b.l0; l1 = Int64.logxor a.l1 b.l1;
    l2 = Int64.logxor a.l2 b.l2; l3 = Int64.logxor a.l3 b.l3 }

let lognot a =
  { l0 = Int64.lognot a.l0; l1 = Int64.lognot a.l1;
    l2 = Int64.lognot a.l2; l3 = Int64.lognot a.l3 }

let shift_left a n =
  if n <= 0 then if n = 0 then a else invalid_arg "shift_left"
  else if n >= 256 then zero
  else begin
    let limbs = [| a.l0; a.l1; a.l2; a.l3 |] in
    let word = n / 64 and bits = n mod 64 in
    let r = Array.make 4 0L in
    for i = 3 downto 0 do
      let src = i - word in
      if src >= 0 then begin
        let v = Int64.shift_left limbs.(src) bits in
        let v =
          if bits > 0 && src - 1 >= 0 then
            Int64.logor v (Int64.shift_right_logical limbs.(src - 1) (64 - bits))
          else v
        in
        r.(i) <- v
      end
    done;
    { l0 = r.(0); l1 = r.(1); l2 = r.(2); l3 = r.(3) }
  end

let shift_right a n =
  if n <= 0 then if n = 0 then a else invalid_arg "shift_right"
  else if n >= 256 then zero
  else begin
    let limbs = [| a.l0; a.l1; a.l2; a.l3 |] in
    let word = n / 64 and bits = n mod 64 in
    let r = Array.make 4 0L in
    for i = 0 to 3 do
      let src = i + word in
      if src <= 3 then begin
        let v = Int64.shift_right_logical limbs.(src) bits in
        let v =
          if bits > 0 && src + 1 <= 3 then
            Int64.logor v (Int64.shift_left limbs.(src + 1) (64 - bits))
          else v
        in
        r.(i) <- v
      end
    done;
    { l0 = r.(0); l1 = r.(1); l2 = r.(2); l3 = r.(3) }
  end

let is_neg a = Int64.shift_right_logical a.l3 63 = 1L

(* Arithmetic shift right: sign-extend per two's complement. *)
let shift_right_arith a n =
  if n = 0 then a
  else if n >= 256 then if is_neg a then max_value else zero
  else
    let r = shift_right a n in
    if is_neg a then
      (* fill the top n bits with ones *)
      let mask = shift_left max_value (256 - n) in
      logor r mask
    else r

let bit a n =
  if n < 0 || n > 255 then false
  else
    let l = limb (n / 64) a in
    Int64.logand (Int64.shift_right_logical l (n mod 64)) 1L = 1L

let set_bit a n =
  if n < 0 || n > 255 then a
  else logor a (shift_left one n)

(* Number of significant bits (0 for zero). *)
let num_bits a =
  let rec top i = if i < 0 then 0 else if limb i a <> 0L then i else top (i - 1) in
  if is_zero a then 0
  else
    let i = top 3 in
    let l = limb i a in
    let rec msb b = if b < 0 then 0 else if Int64.logand (Int64.shift_right_logical l b) 1L = 1L then b + 1 else msb (b - 1) in
    (i * 64) + msb 63

(* ------------------------------------------------------------------ *)
(* Division / modulo (EVM: x / 0 = 0, x mod 0 = 0)                     *)
(* ------------------------------------------------------------------ *)

let divmod a b =
  if is_zero b then (zero, zero)
  else if compare a b < 0 then (zero, a)
  else begin
    (* Binary long division. *)
    let q = ref zero and r = ref zero in
    let n = num_bits a in
    for i = n - 1 downto 0 do
      r := shift_left !r 1;
      if bit a i then r := logor !r one;
      if compare !r b >= 0 then begin
        r := sub !r b;
        q := set_bit !q i
      end
    done;
    (!q, !r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

(* Signed division per EVM SDIV: truncate toward zero; SMOD takes the
   sign of the dividend. *)
let sdiv a b =
  if is_zero b then zero
  else
    let na = is_neg a and nb = is_neg b in
    let ua = if na then neg a else a in
    let ub = if nb then neg b else b in
    let q = div ua ub in
    if na <> nb then neg q else q

let smod a b =
  if is_zero b then zero
  else
    let na = is_neg a in
    let ua = if na then neg a else a in
    let ub = if is_neg b then neg b else b in
    let r = rem ua ub in
    if na then neg r else r

let slt a b =
  match (is_neg a, is_neg b) with
  | true, false -> true
  | false, true -> false
  | _ -> lt a b

let sgt a b = slt b a

(* addmod / mulmod need intermediate precision beyond 256 bits; we use
   the identity on 512-bit intermediates built from limb arrays. *)

let to_limbs a = [| a.l0; a.l1; a.l2; a.l3 |]

(* Divide a little-endian limb array (any length) by a 256-bit modulus,
   returning the remainder as t. Binary method over the full width.
   [shift_left] drops the top bit, so the bit shifted out of position
   255 is tracked explicitly: when set, r conceptually equals
   2^256 + r', and subtracting m once is addition of (2^256 - m). *)
let rem_wide (limbs : int64 array) (m : t) =
  if is_zero m then zero
  else begin
    let nlimbs = Array.length limbs in
    let r = ref zero in
    for i = (nlimbs * 64) - 1 downto 0 do
      let carry = bit !r 255 in
      r := shift_left !r 1;
      let l = limbs.(i / 64) in
      if Int64.logand (Int64.shift_right_logical l (i mod 64)) 1L = 1L then
        r := logor !r one;
      (* If a bit was shifted out, r conceptually = 2^256 + r'. Since
         m < 2^256, subtracting m once from (2^256 + r') equals
         (r' + (2^256 - m)) which is add (neg m). *)
      if carry then r := add !r (neg m);
      if compare !r m >= 0 then r := sub !r m;
      (* One more conditional subtract covers the carry case where
         r' + (2^256 - m) may still be >= m. *)
      if compare !r m >= 0 then r := sub !r m
    done;
    !r
  end

let addmod a b m =
  if is_zero m then zero
  else begin
    (* compute a+b as a 5-limb value *)
    let l0, c0 = add64_carry a.l0 b.l0 0L in
    let l1, c1 = add64_carry a.l1 b.l1 c0 in
    let l2, c2 = add64_carry a.l2 b.l2 c1 in
    let l3, c3 = add64_carry a.l3 b.l3 c2 in
    rem_wide [| l0; l1; l2; l3; c3 |] m
  end

let mulmod a b m =
  if is_zero m then zero
  else begin
    (* full 4x4 limb multiply into 8 limbs *)
    let r = Array.make 8 0L in
    let al = to_limbs a and bl = to_limbs b in
    for i = 0 to 3 do
      let carry = ref 0L in
      for j = 0 to 3 do
        let k = i + j in
        let lo, hi = mul64_full al.(i) bl.(j) in
        let s1, c1 = add64_carry r.(k) lo 0L in
        let s2, c2 = add64_carry s1 !carry 0L in
        r.(k) <- s2;
        carry := Int64.add hi (Int64.add c1 c2)
      done;
      (* propagate final carry *)
      let k = ref (i + 4) in
      while !carry <> 0L && !k < 8 do
        let s, c = add64_carry r.(!k) !carry 0L in
        r.(!k) <- s;
        carry := c;
        incr k
      done
    done;
    rem_wide r m
  end

let exp base e =
  (* Square-and-multiply modulo 2^256 (natural wrap). *)
  let result = ref one and b = ref base in
  for i = 0 to 255 do
    if bit e i then result := mul !result !b;
    b := mul !b !b
  done;
  !result

(* EVM SIGNEXTEND: b identifies the byte position of the sign bit. *)
let signextend bpos x =
  if compare bpos (of_int 31) >= 0 then x
  else
    let b = Int64.to_int bpos.l0 in
    let sign_bit = (b * 8) + 7 in
    if bit x sign_bit then
      let mask = shift_left max_value (sign_bit + 1) in
      logor x mask
    else
      let mask = sub (shift_left one (sign_bit + 1)) one in
      logand x mask

(* EVM BYTE: extract the i-th byte, counting from the most significant. *)
let byte i x =
  if compare i (of_int 31) > 0 then zero
  else
    let idx = Int64.to_int i.l0 in
    let shift = (31 - idx) * 8 in
    logand (shift_right x shift) (of_int 0xff)

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let to_int_opt a =
  if Int64.equal a.l1 0L && Int64.equal a.l2 0L && Int64.equal a.l3 0L
     && ucmp64 a.l0 (Int64.of_int max_int) <= 0
  then Some (Int64.to_int a.l0)
  else None

let to_int a =
  match to_int_opt a with
  | Some i -> i
  | None -> invalid_arg "Uint256.to_int: out of range"

let fits_int a = to_int_opt a <> None

let to_int64_trunc a = a.l0

(** Big-endian 32-byte serialization (the EVM memory/storage format). *)
let to_bytes a =
  let b = Bytes.create 32 in
  for i = 0 to 3 do
    let l = limb (3 - i) a in
    Bytes.set_int64_be b (i * 8) l
  done;
  Bytes.to_string b

let of_bytes (s : string) =
  (* Interprets [s] as a big-endian number; pads on the left if shorter
     than 32 bytes, uses the last 32 bytes if longer. *)
  let n = String.length s in
  let s = if n > 32 then String.sub s (n - 32) 32 else s in
  let n = String.length s in
  let b = Bytes.make 32 '\000' in
  Bytes.blit_string s 0 b (32 - n) n;
  let l3 = Bytes.get_int64_be b 0 in
  let l2 = Bytes.get_int64_be b 8 in
  let l1 = Bytes.get_int64_be b 16 in
  let l0 = Bytes.get_int64_be b 24 in
  { l0; l1; l2; l3 }

let to_hex a =
  let s = to_bytes a in
  let buf = Buffer.create 66 in
  Buffer.add_string buf "0x";
  let started = ref false in
  String.iter
    (fun c ->
      let v = Char.code c in
      if v <> 0 || !started then begin
        if !started then Buffer.add_string buf (Printf.sprintf "%02x" v)
        else begin
          Buffer.add_string buf (Printf.sprintf "%x" v);
          started := true
        end
      end)
    s;
  if not !started then "0x0" else Buffer.contents buf

let to_hex_padded a =
  let s = to_bytes a in
  let buf = Buffer.create 66 in
  Buffer.add_string buf "0x";
  String.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents buf

let of_hex s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X')
    then String.sub s 2 (String.length s - 2)
    else s
  in
  if String.length s = 0 then invalid_arg "Uint256.of_hex: empty";
  if String.length s > 64 then invalid_arg "Uint256.of_hex: too long";
  let v = ref zero in
  String.iter
    (fun c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> invalid_arg "Uint256.of_hex: bad digit"
      in
      v := logor (shift_left !v 4) (of_int d))
    s;
  !v

let of_decimal s =
  if String.length s = 0 then invalid_arg "Uint256.of_decimal: empty";
  let ten = of_int 10 in
  let v = ref zero in
  String.iter
    (fun c ->
      match c with
      | '0' .. '9' ->
          v := add (mul !v ten) (of_int (Char.code c - Char.code '0'))
      | '_' -> ()
      | _ -> invalid_arg "Uint256.of_decimal: bad digit")
    s;
  !v

let of_string s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    of_hex s
  else of_decimal s

let to_decimal a =
  if is_zero a then "0"
  else begin
    let ten = of_int 10 in
    let buf = Buffer.create 80 in
    let v = ref a in
    while not (is_zero !v) do
      let q, r = divmod !v ten in
      Buffer.add_char buf (Char.chr (Char.code '0' + to_int r));
      v := q
    done;
    let s = Buffer.contents buf in
    String.init (String.length s) (fun i -> s.[String.length s - 1 - i])
  end

let to_string = to_hex
let pp fmt a = Format.pp_print_string fmt (to_hex a)

(* Truthiness per EVM JUMPI semantics. *)
let to_bool a = not (is_zero a)
let of_bool b = if b then one else zero
