(* End-to-end tests of the Ethainter core analysis over compiled
   MiniSol contracts: every §3 vulnerability, safe counterparts, the
   §2 composite escalation, sink inference, and the ablation configs. *)

module P = Ethainter_core.Pipeline
module V = Ethainter_core.Vulns
module C = Ethainter_core.Config
module S = Ethainter_core.Scheduler
module G = Ethainter_corpus.Generator

let analyze ?cfg src =
  P.run
    (P.request ?cfg
       (P.Runtime (Ethainter_minisol.Codegen.compile_source_runtime src)))

let flags ?cfg src k = P.flags (analyze ?cfg src) k

let check_flag msg src k expected =
  Alcotest.(check bool) msg expected (flags src k)

(* ---------- §3.1 tainted owner variable ---------- *)

let src_tainted_owner = {|
contract C {
  address owner;
  function initOwner(address o) public { owner = o; }
  function kill() public { if (msg.sender == owner) { selfdestruct(owner); } }
}|}

let src_safe_owner = {|
contract C {
  address owner;
  constructor() { owner = msg.sender; }
  function setOwner(address o) public { require(msg.sender == owner); owner = o; }
  function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}|}

let test_tainted_owner () =
  check_flag "3.1 flags tainted owner" src_tainted_owner V.TaintedOwnerVariable
    true;
  check_flag "3.1 escalates to accessible sd" src_tainted_owner
    V.AccessibleSelfdestruct true;
  check_flag "safe owner clean (tainted owner)" src_safe_owner
    V.TaintedOwnerVariable false;
  check_flag "safe owner clean (accessible sd)" src_safe_owner
    V.AccessibleSelfdestruct false

(* ---------- §3.2 tainted delegatecall ---------- *)

let test_tainted_delegatecall () =
  check_flag "3.2 flags"
    {|contract C { function migrate(address d) public { delegatecall(d); } }|}
    V.TaintedDelegatecall true;
  check_flag "guarded delegatecall clean"
    {|contract C {
        address owner;
        constructor() { owner = msg.sender; }
        function migrate(address d) public {
          require(msg.sender == owner);
          delegatecall(d);
        } }|}
    V.TaintedDelegatecall false;
  check_flag "constant target clean"
    {|contract C {
        function fwd() public { delegatecall(0x1234); } }|}
    V.TaintedDelegatecall false

(* ---------- §3.3 accessible selfdestruct ---------- *)

let test_accessible_selfdestruct () =
  check_flag "3.3 flags"
    {|contract C {
        address b;
        constructor() { b = msg.sender; }
        function kill() public { selfdestruct(b); } }|}
    V.AccessibleSelfdestruct true;
  check_flag "guarded kill clean" src_safe_owner V.AccessibleSelfdestruct false

(* ---------- §3.4 tainted selfdestruct ---------- *)

let src_tainted_beneficiary = {|
contract C {
  address owner;
  address administrator;
  constructor() { owner = msg.sender; }
  function initAdmin(address a) public { administrator = a; }
  function kill() public {
    if (msg.sender == owner) { selfdestruct(administrator); }
  }
}|}

let test_tainted_selfdestruct () =
  let r = analyze src_tainted_beneficiary in
  Alcotest.(check bool) "3.4 flags tainted sd" true
    (P.flags r V.TaintedSelfdestruct);
  (* crucially: the selfdestruct is NOT accessible (the owner guard
     holds; only the beneficiary is tainted) *)
  Alcotest.(check bool) "3.4 does not flag accessible sd" false
    (P.flags r V.AccessibleSelfdestruct)

(* ---------- §3.5 unchecked tainted staticcall ---------- *)

let test_staticcall () =
  check_flag "3.5 unchecked flags"
    {|contract C { function v(address w) public { staticcall_unchecked(w); } }|}
    V.UncheckedTaintedStaticcall true;
  check_flag "3.5 checked clean"
    {|contract C { function v(address w) public { staticcall_checked(w); } }|}
    V.UncheckedTaintedStaticcall false

(* ---------- §2 composite ---------- *)

let src_victim = {|
contract Victim {
  mapping(address => bool) admins;
  mapping(address => bool) users;
  address owner;
  modifier onlyAdmins { require(admins[msg.sender]); _; }
  modifier onlyUsers { require(users[msg.sender]); _; }
  constructor() { owner = msg.sender; }
  function registerSelf() public { users[msg.sender] = true; }
  function referUser(address user) public onlyUsers { users[user] = true; }
  function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
  function changeOwner(address o) public onlyAdmins { owner = o; }
  function kill() public onlyAdmins { selfdestruct(owner); }
}|}

(* the corrected Victim: referAdmin is admin-guarded, closing the hole *)
let src_victim_fixed = {|
contract Victim {
  mapping(address => bool) admins;
  mapping(address => bool) users;
  address owner;
  modifier onlyAdmins { require(admins[msg.sender]); _; }
  modifier onlyUsers { require(users[msg.sender]); _; }
  constructor() { owner = msg.sender; admins[msg.sender] = true; }
  function registerSelf() public { users[msg.sender] = true; }
  function referUser(address user) public onlyUsers { users[user] = true; }
  function referAdmin(address adm) public onlyAdmins { admins[adm] = true; }
  function changeOwner(address o) public onlyAdmins { owner = o; }
  function kill() public onlyAdmins { selfdestruct(owner); }
}|}

let test_composite_victim () =
  let r = analyze src_victim in
  Alcotest.(check bool) "victim: accessible sd" true
    (P.flags r V.AccessibleSelfdestruct);
  Alcotest.(check bool) "victim: tainted sd" true
    (P.flags r V.TaintedSelfdestruct);
  (* reports carry the composite marker *)
  Alcotest.(check bool) "composite marker" true
    (List.exists (fun rep -> rep.V.r_composite) r.P.reports)

let test_fixed_victim_clean () =
  let r = analyze src_victim_fixed in
  Alcotest.(check int) "fixed victim: no reports" 0 (List.length r.P.reports)

(* registerSelf is the linchpin: remove it and the chain collapses *)
let test_no_entry_no_escalation () =
  let src = {|
contract Victim {
  mapping(address => bool) admins;
  mapping(address => bool) users;
  address owner;
  modifier onlyAdmins { require(admins[msg.sender]); _; }
  modifier onlyUsers { require(users[msg.sender]); _; }
  constructor() { owner = msg.sender; }
  function referUser(address user) public onlyUsers { users[user] = true; }
  function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
  function changeOwner(address o) public onlyAdmins { owner = o; }
  function kill() public onlyAdmins { selfdestruct(owner); }
}|} in
  let r = analyze src in
  Alcotest.(check int) "no self-registration, no reports" 0
    (List.length r.P.reports)

(* ---------- sink inference (§4.5) ---------- *)

let test_sink_inference_negative () =
  (* stores to a slot never used in a sender guard are not owner sinks *)
  let src = {|
contract C {
  uint256 counter;
  address owner;
  constructor() { owner = msg.sender; }
  function bump(uint256 x) public { counter = x; }
  function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}|} in
  Alcotest.(check bool) "counter is not an owner variable" false
    (flags src V.TaintedOwnerVariable)

let test_membership_guard_not_sink () =
  (* DS-membership guards (admins[msg.sender]) do not make the mapping
     an owner sink per the §4.5 equality rule *)
  let src = {|
contract C {
  mapping(address => bool) admins;
  constructor() { admins[msg.sender] = true; }
  function add(address a) public { require(admins[msg.sender]); admins[a] = true; }
}|} in
  Alcotest.(check bool) "membership base not flagged as owner var" false
    (flags src V.TaintedOwnerVariable)

(* ---------- memory taint (parameters travel via memory) ---------- *)

let test_memory_taint_param_flow () =
  (* the delegatecall target flows calldata -> memory slot -> MLOAD *)
  Alcotest.(check bool) "param flow through memory" true
    (flags
       {|contract C {
           function f(address d) public {
             address copy = d;
             delegatecall(copy);
           } }|}
       V.TaintedDelegatecall)

(* ---------- orphan code ---------- *)

let test_orphan_flagged () =
  let src = {|
contract C {
  address owner;
  constructor() { owner = msg.sender; }
  function noop() public { }
  function escape() private { selfdestruct(owner); }
}|} in
  let r = analyze src in
  let sd_reports =
    List.filter (fun rep -> rep.V.r_kind = V.AccessibleSelfdestruct) r.P.reports
  in
  Alcotest.(check bool) "orphan selfdestruct flagged" true (sd_reports <> []);
  Alcotest.(check bool) "marked as no-public-entry" true
    (List.for_all (fun rep -> rep.V.r_orphan) sd_reports)

(* ---------- ablations ---------- *)

let test_ablation_no_guards () =
  (* without guard modeling even the safe owner contract is flagged *)
  Alcotest.(check bool) "safe contract flagged without guard model" true
    (flags ~cfg:C.no_guard_model src_safe_owner V.AccessibleSelfdestruct)

let test_ablation_no_storage () =
  (* without storage taint the composite escalation disappears... *)
  Alcotest.(check bool) "victim invisible without storage modeling" false
    (flags ~cfg:C.no_storage_model src_victim V.AccessibleSelfdestruct);
  (* ...but direct single-transaction vulnerabilities remain *)
  Alcotest.(check bool) "direct delegatecall still flagged" true
    (flags ~cfg:C.no_storage_model
       {|contract C { function m(address d) public { delegatecall(d); } }|}
       V.TaintedDelegatecall)

let test_ablation_conservative () =
  (* raw pointer writes alias everything only under conservative mode *)
  let src = {|
contract C {
  address owner;
  uint256 ptr;
  constructor() {
    owner = msg.sender;
    ptr = 99999999;
  }
  function setValue(uint256 v) public { assembly_sstore(assembly_sload(1), v); }
  function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}|} in
  Alcotest.(check bool) "default: precise, clean" false
    (flags src V.AccessibleSelfdestruct);
  Alcotest.(check bool) "conservative: flagged" true
    (flags ~cfg:C.conservative src V.AccessibleSelfdestruct)

(* ---------- composite flows × ablation switches (§4 judgments) ---------- *)

(* A writable owner is both a direct sink hit (tainted owner variable,
   a single-transaction flow) and a composite guard defeat (the
   equality guard trusts a tainted slot — Uguard-T — so the
   selfdestruct escalates to accessible + tainted). *)
let src_tainted_guard = {|
contract C {
  address owner;
  constructor() { owner = msg.sender; }
  function claim(address o) public { owner = o; }
  function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}|}

(* DS guard over an attacker-writable sender-keyed structure: the
   admins[msg.sender] membership guard (Fig. 4 DS rules) is defeated
   because anyone can write admins[x]. *)
let src_ds_open = {|
contract C {
  mapping(address => bool) admins;
  address owner;
  constructor() { owner = msg.sender; }
  function join(address a) public { admins[a] = true; }
  function kill() public { require(admins[msg.sender]); selfdestruct(owner); }
}|}

(* Same guard, but the structure is closed (seeded in the constructor,
   writes admin-guarded): sanitization holds. *)
let src_ds_safe = {|
contract C {
  mapping(address => bool) admins;
  address owner;
  constructor() { owner = msg.sender; admins[msg.sender] = true; }
  function add(address a) public { require(admins[msg.sender]); admins[a] = true; }
  function kill() public { require(admins[msg.sender]); selfdestruct(owner); }
}|}

(* Two-step DSA escalation: self-registration (users[msg.sender], the
   DSA sender-keyed write) unlocks tainting admins, which unlocks the
   selfdestruct — the §2 chain in miniature. *)
let src_dsa_self = {|
contract C {
  mapping(address => bool) users;
  mapping(address => bool) admins;
  address owner;
  constructor() { owner = msg.sender; }
  function registerSelf() public { users[msg.sender] = true; }
  function referAdmin(address adm) public { require(users[msg.sender]); admins[adm] = true; }
  function kill() public { require(admins[msg.sender]); selfdestruct(owner); }
}|}

(* The same shape without the open entry point: every structure is
   guarded by an unreachable membership, so the chain never starts. *)
let src_dsa_closed = {|
contract C {
  mapping(address => bool) users;
  mapping(address => bool) admins;
  address owner;
  constructor() { owner = msg.sender; users[msg.sender] = true; }
  function referUser(address u) public { require(users[msg.sender]); users[u] = true; }
  function referAdmin(address adm) public { require(admins[msg.sender]); admins[adm] = true; }
  function kill() public { require(admins[msg.sender]); selfdestruct(owner); }
}|}

(* expected AccessibleSelfdestruct verdict per (contract, config) *)
let check_matrix name src ~default ~no_storage ~no_guard ~conservative =
  List.iter
    (fun (cname, cfg, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s / %s" name cname)
        expected
        (flags ~cfg src V.AccessibleSelfdestruct))
    [ ("default", C.default, default);
      ("no_storage", C.no_storage_model, no_storage);
      ("no_guard", C.no_guard_model, no_guard);
      ("conservative", C.conservative, conservative) ]

let test_ablation_matrix_tainted_guard () =
  check_matrix "tainted guard" src_tainted_guard
    ~default:true ~no_storage:false ~no_guard:true ~conservative:true;
  (* the direct single-transaction flow survives the storage ablation
     even though the composite escalation disappears *)
  Alcotest.(check bool) "tainted owner survives no_storage" true
    (flags ~cfg:C.no_storage_model src_tainted_guard V.TaintedOwnerVariable);
  (* and the guard defeat also taints the selfdestruct beneficiary *)
  Alcotest.(check bool) "beneficiary tainted under default" true
    (flags src_tainted_guard V.TaintedSelfdestruct)

let test_ablation_matrix_ds () =
  check_matrix "open DS guard" src_ds_open
    ~default:true ~no_storage:false ~no_guard:true ~conservative:true;
  (* closed DS: clean everywhere except the no-guard ablation, whose
     whole point is that sanitization is dropped (Fig. 8b precision
     collapse); conservative storage stays precise because the mapping
     has a known base slot *)
  check_matrix "closed DS guard" src_ds_safe
    ~default:false ~no_storage:false ~no_guard:true ~conservative:false

let test_ablation_matrix_dsa () =
  check_matrix "DSA self-registration chain" src_dsa_self
    ~default:true ~no_storage:false ~no_guard:true ~conservative:true;
  check_matrix "closed DSA chain" src_dsa_closed
    ~default:false ~no_storage:false ~no_guard:true ~conservative:false

(* ---------- parallel scheduler determinism ---------- *)

(* What must be byte-identical between sequential and parallel runs:
   flags, reports, timeout and error status (elapsed_s is wall-clock
   and legitimately varies). *)
let result_key (r : P.result) =
  (P.flagged_kinds r, r.P.reports, r.P.tac_loc, r.P.blocks,
   r.P.analysis_rounds, r.P.timed_out, r.P.error)

let test_parallel_determinism () =
  let corpus = G.mainnet ~seed:99 ~size:100 () in
  (* include degenerate inputs: empty bytecode and garbage that makes
     the decompiler raise — fault isolation must yield the same
     error-kind results in parallel as sequentially *)
  let runtimes =
    List.map (fun (i : G.instance) -> i.G.i_runtime) corpus
    @ [ ""; "\xfe\x01\x02garbage"; String.make 40 '\xff' ]
  in
  let seq =
    List.map (fun c -> S.analyze_request (P.request (P.Runtime c))) runtimes
  in
  List.iter
    (fun w ->
      let par = S.analyze_corpus ~workers:w runtimes in
      Alcotest.(check int)
        (Printf.sprintf "workers=%d: corpus length" w)
        (List.length seq) (List.length par);
      List.iteri
        (fun i (a, b) ->
          Alcotest.(check bool)
            (Printf.sprintf "workers=%d: contract %d identical" w i)
            true
            (result_key a = result_key b))
        (List.combine seq par))
    [ 1; 2; 8 ]

let test_parallel_determinism_timeouts () =
  (* a zero budget times every contract out; the parallel run must
     report exactly the same timeouts in the same order *)
  let corpus = G.mainnet ~seed:5 ~size:20 () in
  let runtimes = List.map (fun (i : G.instance) -> i.G.i_runtime) corpus in
  let seq =
    List.map
      (fun c -> S.analyze_request (P.request ~timeout_s:0.0 (P.Runtime c)))
      runtimes
  in
  let par = S.analyze_corpus ~timeout_s:0.0 ~workers:8 runtimes in
  List.iter2
    (fun a b ->
      Alcotest.(check bool) "timed-out results identical" true
        (result_key a = result_key b);
      Alcotest.(check bool) "timed out" true b.P.timed_out)
    seq par

let test_scheduler_fault_isolation () =
  (* one poisoned item must not kill the pool or perturb neighbours *)
  let items = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let f x = if x = 5 then failwith "poison" else x * 10 in
  let rs = S.map_result ~workers:4 f items in
  Alcotest.(check int) "all items accounted for" 8 (List.length rs);
  List.iteri
    (fun i r ->
      match (i + 1, r) with
      | 5, Error (f : S.failure) ->
          Alcotest.(check bool) "error message kept" true
            (String.length f.S.f_exn > 0);
          Alcotest.(check bool) "classified fatal" true
            (f.S.f_kind = P.Fatal)
      | 5, Ok _ -> Alcotest.fail "poisoned item must error"
      | x, Ok y -> Alcotest.(check int) "value in order" (x * 10) y
      | _, Error f -> Alcotest.failf "unexpected error: %s" f.S.f_exn)
    rs

(* ---------- report metadata ---------- *)

let test_report_fields () =
  let r = analyze src_tainted_owner in
  List.iter
    (fun rep ->
      Alcotest.(check bool) "pc positive" true (rep.V.r_pc > 0);
      Alcotest.(check bool) "report renders" true
        (String.length (V.report_to_string rep) > 0))
    r.P.reports;
  Alcotest.(check bool) "pipeline counts stmts" true (r.P.tac_loc > 0);
  Alcotest.(check bool) "pipeline counts blocks" true (r.P.blocks > 0)

let test_timeout_handling () =
  let runtime =
    Ethainter_minisol.Codegen.compile_source_runtime src_victim
  in
  let r = P.run (P.request ~timeout_s:0.0 (P.Runtime runtime)) in
  Alcotest.(check bool) "zero budget times out" true r.P.timed_out

(* The fixpoint must terminate on every corpus template (regression
   guard against non-monotone rule changes). *)
let test_fixpoint_terminates_everywhere () =
  List.iter
    (fun (t : Ethainter_corpus.Patterns.template) ->
      let r =
        P.run
          (P.request
             (P.Runtime
                (Ethainter_minisol.Codegen.compile_source_runtime
                   t.Ethainter_corpus.Patterns.t_source)))
      in
      Alcotest.(check bool)
        (t.Ethainter_corpus.Patterns.t_name ^ " rounds sane")
        true
        (r.P.analysis_rounds < 50))
    Ethainter_corpus.Patterns.all_templates

(* ---------- explanations ---------- *)

module Ex = Ethainter_core.Explain

let explanations src =
  Ex.explain_runtime (Ethainter_minisol.Codegen.compile_source_runtime src)

let test_explain_tainted_selfdestruct () =
  let exps = explanations src_tainted_beneficiary in
  let e =
    List.find
      (fun (e : Ex.explanation) ->
        e.Ex.e_report.V.r_kind = V.TaintedSelfdestruct)
      exps
  in
  (* the witness must show: input source, storage round-trip, sink *)
  let has_step p = List.exists p e.Ex.e_steps in
  Alcotest.(check bool) "starts at attacker input" true
    (has_step (function Ex.SourceInput _ -> true | _ -> false));
  Alcotest.(check bool) "passes into storage" true
    (has_step (function Ex.IntoStorage _ -> true | _ -> false));
  Alcotest.(check bool) "comes back out of storage" true
    (has_step (function Ex.OutOfStorage _ -> true | _ -> false));
  Alcotest.(check bool) "ends at the sink" true
    (match List.rev e.Ex.e_steps with
    | Ex.Sink _ :: _ -> true
    | _ -> false)

let test_explain_guard_defeat () =
  let exps = explanations src_victim in
  let e =
    List.find
      (fun (e : Ex.explanation) ->
        e.Ex.e_report.V.r_kind = V.AccessibleSelfdestruct)
      exps
  in
  Alcotest.(check bool) "names the defeated guard" true
    (List.exists
       (function Ex.GuardDefeated _ -> true | _ -> false)
       e.Ex.e_steps);
  (* explanations render *)
  Alcotest.(check bool) "renders" true
    (String.length (Ex.explanation_to_string e) > 0)

let test_explain_every_report_has_sink () =
  List.iter
    (fun (t : Ethainter_corpus.Patterns.template) ->
      let exps =
        Ex.explain_runtime
          (Ethainter_minisol.Codegen.compile_source_runtime
             t.Ethainter_corpus.Patterns.t_source)
      in
      List.iter
        (fun (e : Ex.explanation) ->
          Alcotest.(check bool)
            (t.Ethainter_corpus.Patterns.t_name ^ ": witness ends in sink")
            true
            (match List.rev e.Ex.e_steps with
            | Ex.Sink _ :: _ -> true
            | _ -> false))
        exps)
    Ethainter_corpus.Patterns.all_templates

(* ---------- declarative / native agreement ---------- *)

(* The Fig. 5 skeleton run on the Datalog engine must agree with the
   native fixpoint on the selfdestruct/delegatecall verdicts, for every
   corpus template. *)
let test_datalog_native_agreement () =
  List.iter
    (fun (t : Ethainter_corpus.Patterns.template) ->
      let runtime =
        Ethainter_minisol.Codegen.compile_source_runtime
          t.Ethainter_corpus.Patterns.t_source
      in
      let native = P.run (P.request (P.Runtime runtime)) in
      let decl = Ethainter_core.Datalog_frontend.analyze_runtime runtime in
      let open Ethainter_core.Datalog_frontend in
      Alcotest.(check bool)
        (t.Ethainter_corpus.Patterns.t_name ^ ": accessible selfdestruct")
        (P.flags native V.AccessibleSelfdestruct)
        (decl.d_reachable_selfdestruct <> []);
      Alcotest.(check bool)
        (t.Ethainter_corpus.Patterns.t_name ^ ": tainted selfdestruct")
        (P.flags native V.TaintedSelfdestruct)
        (decl.d_tainted_selfdestruct <> []);
      Alcotest.(check bool)
        (t.Ethainter_corpus.Patterns.t_name ^ ": tainted delegatecall")
        (P.flags native V.TaintedDelegatecall)
        (decl.d_tainted_delegatecall <> []))
    Ethainter_corpus.Patterns.all_templates

let () =
  Alcotest.run "analysis"
    [ ( "primitives",
        [ Alcotest.test_case "3.1 tainted owner" `Quick test_tainted_owner;
          Alcotest.test_case "3.2 tainted delegatecall" `Quick
            test_tainted_delegatecall;
          Alcotest.test_case "3.3 accessible selfdestruct" `Quick
            test_accessible_selfdestruct;
          Alcotest.test_case "3.4 tainted selfdestruct" `Quick
            test_tainted_selfdestruct;
          Alcotest.test_case "3.5 staticcall" `Quick test_staticcall ] );
      ( "composite",
        [ Alcotest.test_case "victim escalation" `Quick test_composite_victim;
          Alcotest.test_case "fixed victim clean" `Quick
            test_fixed_victim_clean;
          Alcotest.test_case "no entry, no escalation" `Quick
            test_no_entry_no_escalation ] );
      ( "sinks",
        [ Alcotest.test_case "non-guard slot not a sink" `Quick
            test_sink_inference_negative;
          Alcotest.test_case "membership guard not a sink" `Quick
            test_membership_guard_not_sink ] );
      ( "flows",
        [ Alcotest.test_case "memory taint" `Quick
            test_memory_taint_param_flow;
          Alcotest.test_case "orphan code" `Quick test_orphan_flagged ] );
      ( "ablations",
        [ Alcotest.test_case "no guard model" `Quick test_ablation_no_guards;
          Alcotest.test_case "no storage model" `Quick
            test_ablation_no_storage;
          Alcotest.test_case "conservative storage" `Quick
            test_ablation_conservative;
          Alcotest.test_case "matrix: tainted guard" `Quick
            test_ablation_matrix_tainted_guard;
          Alcotest.test_case "matrix: DS sender-keyed" `Quick
            test_ablation_matrix_ds;
          Alcotest.test_case "matrix: DSA escalation chain" `Quick
            test_ablation_matrix_dsa ] );
      ( "scheduler",
        [ Alcotest.test_case "parallel determinism w=1,2,8" `Slow
            test_parallel_determinism;
          Alcotest.test_case "parallel timeout determinism" `Quick
            test_parallel_determinism_timeouts;
          Alcotest.test_case "fault isolation" `Quick
            test_scheduler_fault_isolation ] );
      ( "infrastructure",
        [ Alcotest.test_case "report fields" `Quick test_report_fields;
          Alcotest.test_case "timeout" `Quick test_timeout_handling;
          Alcotest.test_case "fixpoint terminates" `Quick
            test_fixpoint_terminates_everywhere ] );
      ( "explanations",
        [ Alcotest.test_case "tainted selfdestruct witness" `Quick
            test_explain_tainted_selfdestruct;
          Alcotest.test_case "guard defeat named" `Quick
            test_explain_guard_defeat;
          Alcotest.test_case "every report explained" `Quick
            test_explain_every_report_has_sink ] );
      ( "declarative",
        [ Alcotest.test_case "datalog/native agreement" `Slow
            test_datalog_native_agreement ] ) ]
