(* Tests for the three baseline tools: the Securify pattern analyzer,
   the Securify2 source-level analyzer, and the teEther symbolic
   executor — including a dynamic check that teEther's synthesized
   exploits actually work on the chain. *)

module U = Ethainter_word.Uint256
module T = Ethainter_chain.Testnet
module Sec = Ethainter_baselines.Securify
module Sec2 = Ethainter_baselines.Securify2
module Te = Ethainter_baselines.Teether
module Sx = Ethainter_baselines.Symex

let compile_rt = Ethainter_minisol.Codegen.compile_source_runtime

let token_src = {|
contract Token {
  mapping(address => uint256) balances;
  function transfer(address to, uint256 v) public {
    require(balances[msg.sender] >= v);
    balances[to] = balances[to] + v;
    balances[msg.sender] = balances[msg.sender] - v;
  }
  function deposit() public payable {
    balances[msg.sender] = balances[msg.sender] + msg.value;
  }
}|}

let owner_guarded_src = {|
contract C {
  address owner;
  uint256 v;
  constructor() { owner = msg.sender; }
  function set(uint256 x) public { require(msg.sender == owner); v = x; }
}|}

(* ---------- Securify ---------- *)

let test_securify_flags_token () =
  (* the §6.2 example: mapping writes are pointer arithmetic to
     Securify, hence "unrestricted write" false positives *)
  let r = Sec.analyze (compile_rt token_src) in
  Alcotest.(check bool) "token flagged" true r.Sec.flagged;
  Alcotest.(check bool) "unrestricted writes reported" true
    (Sec.count_pattern r "unrestricted-write" > 0)

let test_securify_eq_guard_compliant () =
  (* a direct msg.sender == owner guard IS modeled by Securify *)
  let r = Sec.analyze (compile_rt owner_guarded_src) in
  Alcotest.(check int) "owner-guarded write compliant" 0
    (Sec.count_pattern r "unrestricted-write")

let test_securify_vs_ethainter_on_token () =
  (* Ethainter's data-structure modeling keeps the token clean *)
  let eth = Ethainter_core.Pipeline.(run (request (Runtime (compile_rt token_src)))) in
  Alcotest.(check int) "ethainter clean on token" 0
    (List.length eth.Ethainter_core.Pipeline.reports)

let test_securify_missing_input_validation () =
  let src = {|
contract C {
  uint256 stored;
  function put(uint256 x) public { stored = x; }
}|} in
  let r = Sec.analyze (compile_rt src) in
  Alcotest.(check bool) "unvalidated input to sstore" true
    (Sec.count_pattern r "missing-input-validation" > 0)

(* ---------- Securify2 ---------- *)

let info ?(src = Some "") ?(version = (5, 8)) ?(assembly = false) source =
  { Sec2.src = (match src with Some _ -> Some source | None -> None);
    solidity_version = version; uses_assembly = assembly }

let test_securify2_selfdestruct () =
  let open_kill = {|
contract C {
  address b;
  constructor() { b = msg.sender; }
  function kill() public { selfdestruct(b); }
}|} in
  (match Sec2.analyze (info open_kill) with
  | Sec2.Findings fs ->
      Alcotest.(check bool) "unguarded kill flagged" true
        (List.exists (fun f -> f.Sec2.pattern = "UnrestrictedSelfdestruct") fs)
  | _ -> Alcotest.fail "expected findings");
  match Sec2.analyze (info owner_guarded_src) with
  | Sec2.Findings fs ->
      Alcotest.(check bool) "guarded contract has no selfdestruct finding"
        false
        (List.exists (fun f -> f.Sec2.pattern = "UnrestrictedSelfdestruct") fs)
  | _ -> Alcotest.fail "expected findings"

let test_securify2_no_composite () =
  (* Securify2 sees the sender guard on kill() and stays silent on the
     Victim — it cannot reason about guard tainting *)
  let victim = {|
contract Victim {
  mapping(address => bool) admins;
  mapping(address => bool) users;
  address owner;
  modifier onlyAdmins { require(admins[msg.sender]); _; }
  modifier onlyUsers { require(users[msg.sender]); _; }
  constructor() { owner = msg.sender; }
  function registerSelf() public { users[msg.sender] = true; }
  function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
  function changeOwner(address o) public onlyAdmins { owner = o; }
  function kill() public onlyAdmins { selfdestruct(owner); }
}|} in
  match Sec2.analyze (info victim) with
  | Sec2.Findings fs ->
      Alcotest.(check bool) "composite invisible to Securify2" false
        (List.exists (fun f -> f.Sec2.pattern = "UnrestrictedSelfdestruct") fs)
  | _ -> Alcotest.fail "expected findings"

let test_securify2_applicability () =
  (match Sec2.analyze { (info "contract C { }") with Sec2.src = None } with
  | Sec2.NotApplicable _ -> ()
  | _ -> Alcotest.fail "no source must be out of scope");
  (match Sec2.analyze (info ~version:(4, 24) "contract C { }") with
  | Sec2.NotApplicable _ -> ()
  | _ -> Alcotest.fail "old solidity must be out of scope");
  match Sec2.analyze (info "contract C {") with
  | Sec2.NotApplicable _ -> ()
  | _ -> Alcotest.fail "unparsable source must fail fact extraction"

let test_securify2_assembly_blindspot () =
  let delegate = {|
contract C { function m(address d) public { delegatecall(d); } }|} in
  (match Sec2.analyze (info ~assembly:true delegate) with
  | Sec2.Findings fs ->
      Alcotest.(check bool) "delegatecall in assembly invisible" false
        (List.exists (fun f -> f.Sec2.pattern = "UnrestrictedDelegateCall") fs)
  | _ -> Alcotest.fail "expected findings");
  match Sec2.analyze (info ~assembly:false delegate) with
  | Sec2.Findings fs ->
      Alcotest.(check bool) "plain-source delegatecall visible" true
        (List.exists (fun f -> f.Sec2.pattern = "UnrestrictedDelegateCall") fs)
  | _ -> Alcotest.fail "expected findings"

let test_securify2_timeout () =
  (* a loop-heavy contract blows the work budget *)
  let loops =
    let body = String.concat "" (List.init 20 (fun i ->
        Printf.sprintf
          "  function f%d(uint256 n) public returns (uint256) { uint256 s = 0; uint256 i = 0; while (i < n) { if (s %% 2 == 0) { s = s + i; } else { s = s + 2 * i; } i = i + 1; } return s; }\n"
          i))
    in
    "contract Busy {\n" ^ body ^ "}"
  in
  match Sec2.analyze (info loops) with
  | Sec2.Timeout -> ()
  | _ -> Alcotest.fail "expected timeout"

(* ---------- Symex / teEther ---------- *)

let test_symex_reaches_selfdestruct () =
  let open_kill = {|
contract C {
  address b;
  constructor() { b = msg.sender; }
  function kill() public { selfdestruct(b); }
}|} in
  let paths, _ = Sx.explore (compile_rt open_kill) in
  Alcotest.(check bool) "found a selfdestruct path" true (paths <> [])

let test_teether_exploit_works_on_chain () =
  (* the acid test: replay the synthesized calldata on the testnet and
     watch the contract die *)
  let open_kill = {|
contract C {
  address b;
  constructor() { b = msg.sender; }
  function kill() public { selfdestruct(b); }
}|} in
  match Te.analyze (compile_rt open_kill) with
  | Te.Exploits (e :: _) ->
      let net = T.create () in
      let deployer = T.account_of_seed "d" in
      T.fund_account net deployer (U.of_string "1000000000000000000");
      T.fund_account net e.Te.e_caller (U.of_string "1000000000000000000");
      let r =
        T.deploy net ~from:deployer
          (Ethainter_minisol.Codegen.compile_source open_kill)
      in
      let addr = match r.T.created with Some a -> a | None -> assert false in
      let rc =
        T.transact net ~from:e.Te.e_caller ~to_:addr e.Te.e_calldata
      in
      Alcotest.(check bool) "exploit transaction succeeded" true
        (T.succeeded rc);
      Alcotest.(check bool) "contract destroyed" false (T.is_alive net addr)
  | _ -> Alcotest.fail "teEther should synthesize an exploit"

let test_teether_respects_guards () =
  (* fresh-deploy storage has owner == 0; no admissible caller passes *)
  match Te.analyze (compile_rt owner_guarded_src) with
  | Te.Exploits _ -> Alcotest.fail "guarded contract must not be exploited"
  | _ -> ()

let test_teether_misses_composite () =
  (* single-transaction symbolic execution cannot see the §2 chain *)
  let victim = {|
contract Victim {
  mapping(address => bool) admins;
  address owner;
  modifier onlyAdmins { require(admins[msg.sender]); _; }
  constructor() { owner = msg.sender; }
  function registerAdmin(address a) public { admins[a] = true; }
  function kill() public onlyAdmins { selfdestruct(owner); }
}|} in
  (* NB: even this 2-transaction attack (registerAdmin then kill) is
     invisible to a single-tx symbolic tool *)
  match Te.analyze (compile_rt victim) with
  | Te.Exploits _ -> Alcotest.fail "multi-tx exploit should be missed"
  | _ -> ()

let test_teether_budget () =
  (* pathological loop: resources run out rather than hanging *)
  let loopy = {|
contract C {
  address b;
  function spin(uint256 n) public {
    uint256 i = 0;
    while (i < n) { i = i + 1; }
    selfdestruct(b);
  }
}|} in
  match Te.analyze ~max_steps:2000 ~max_paths:8 (compile_rt loopy) with
  | Te.ResourceExhausted -> ()
  | Te.Exploits _ -> () (* acceptable: found before budget ran out *)
  | Te.NoExploit -> Alcotest.fail "loop should exhaust budget or find exploit"

let test_symex_solver_soundness () =
  (* find_model never returns a model violating its constraints *)
  let paths, _ =
    Sx.explore
      (compile_rt {|
contract C {
  function pick(uint256 x) public {
    require(x == 77);
    selfdestruct(msg.sender);
  }
}|})
  in
  Alcotest.(check bool) "path found" true (paths <> []);
  List.iter
    (fun (p : Sx.path) ->
      match
        Sx.find_model p.Sx.constraints ~initial_storage:(fun _ -> U.zero)
      with
      | Some m ->
          Alcotest.(check bool) "model satisfies constraints" true
            (Sx.check_model m p.Sx.constraints)
      | None -> ())
    paths

(* differential property: on straight-line arithmetic over calldata,
   the symbolic executor's path expression evaluates to exactly what
   the concrete interpreter computes *)
let prop_symex_matches_interp =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"symex expression = concrete execution"
       ~count:40
       QCheck.(pair (int_bound 100000) (int_bound 100000))
       (fun (a, b) ->
         (* contract: selfdestruct(calldata0 * a + b) — symbolically
            explore, then evaluate the beneficiary under a model and
            compare with concrete execution *)
         let module B = Ethainter_evm.Bytecode in
         let module Op = Ethainter_evm.Opcode in
         let code =
           B.assemble
             [ B.Push (U.of_int b); B.Push (U.of_int a); B.Push U.zero;
               B.Op Op.CALLDATALOAD; B.Op Op.MUL; B.Op Op.ADD;
               B.Op Op.SELFDESTRUCT ]
         in
         let paths, _ = Sx.explore code in
         match paths with
         | [ p ] -> (
             let x = U.of_int 777 in
             let model =
               { Sx.caller = U.of_int 1; callvalue = U.zero;
                 inputs = [ (0, x) ]; initial_storage = (fun _ -> U.zero) }
             in
             match Option.bind p.Sx.beneficiary (Sx.eval model) with
             | Some sym_val ->
                 (* concrete run *)
                 let state = Ethainter_evm.State.create () in
                 let contract = U.of_int 0xC0DE in
                 Ethainter_evm.State.set_code state contract code;
                 Ethainter_evm.State.set_balance state contract (U.of_int 5);
                 let _, trace =
                   Ethainter_evm.Interp.call state ~caller:(U.of_int 1)
                     ~target:contract ~value:U.zero
                     ~calldata:(U.to_bytes x)
                 in
                 let expected = U.add (U.mul x (U.of_int a)) (U.of_int b) in
                 (* the destroyed balance went to the computed address *)
                 Ethainter_evm.Interp.trace_selfdestructed trace contract
                 && U.equal sym_val expected
                 && U.equal
                      (Ethainter_evm.State.balance state
                         (U.logand expected
                            (U.sub (U.shift_left U.one 160) U.one)))
                      (U.of_int 5)
             | None -> false)
         | _ -> false))

let () =
  Alcotest.run "baselines"
    [ ( "securify",
        [ Alcotest.test_case "flags the token" `Quick test_securify_flags_token;
          Alcotest.test_case "eq-guard compliant" `Quick
            test_securify_eq_guard_compliant;
          Alcotest.test_case "ethainter clean on token" `Quick
            test_securify_vs_ethainter_on_token;
          Alcotest.test_case "missing input validation" `Quick
            test_securify_missing_input_validation ] );
      ( "securify2",
        [ Alcotest.test_case "selfdestruct pattern" `Quick
            test_securify2_selfdestruct;
          Alcotest.test_case "blind to composite" `Quick
            test_securify2_no_composite;
          Alcotest.test_case "applicability" `Quick
            test_securify2_applicability;
          Alcotest.test_case "assembly blind spot" `Quick
            test_securify2_assembly_blindspot;
          Alcotest.test_case "timeout" `Quick test_securify2_timeout ] );
      ( "teether",
        [ Alcotest.test_case "symex reaches selfdestruct" `Quick
            test_symex_reaches_selfdestruct;
          Alcotest.test_case "exploit works on chain" `Quick
            test_teether_exploit_works_on_chain;
          Alcotest.test_case "respects guards" `Quick
            test_teether_respects_guards;
          Alcotest.test_case "misses composite" `Quick
            test_teether_misses_composite;
          Alcotest.test_case "budget" `Quick test_teether_budget;
          Alcotest.test_case "solver soundness" `Quick
            test_symex_solver_soundness ] );
      ("differential", [ prop_symex_matches_interp ]) ]
