(* Tests for the content-addressed analysis cache (PR 2): the generic
   Cache module (LRU memory tier + disk tier), the result codec, the
   Config fingerprint, and the Pipeline.run request API — including
   the differential guarantee that caching is observationally
   transparent (cached == uncached, byte-identical reports). *)

module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module C = Ethainter_core.Config
module Cache = Ethainter_core.Cache
module G = Ethainter_corpus.Generator

(* identical up to wall-clock: everything but elapsed_s *)
let normalize (r : P.result) = { r with P.elapsed_s = 0.0 }

let compile = Ethainter_minisol.Codegen.compile_source_runtime

let src_victim = {|
contract Victim {
  address owner;
  constructor() { owner = msg.sender; }
  function claim(address who) public { owner = who; }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}

(* A fresh private temp directory per call. *)
let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ethainter_cache_test_%d_%d" (Unix.getpid ())
           !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

(* a trivial self-validating string codec for the generic-cache tests *)
let str_cache ?capacity ?dir () =
  Cache.create ?capacity ?dir
    ~encode:(fun v -> "S1\n" ^ v)
    ~decode:(fun s ->
      if String.length s >= 3 && String.sub s 0 3 = "S1\n" then
        Some (String.sub s 3 (String.length s - 3))
      else None)
    ()

(* Run [f] with the pipeline cache in a known state, restoring the
   previous enabled/dir state afterwards so tests don't interfere. *)
let with_pipeline_cache ?dir f =
  let was_enabled = P.cache_enabled () in
  P.set_cache_enabled true;
  P.set_cache_dir dir;  (* also clears the memory tier *)
  P.cache_clear ();
  Fun.protect
    ~finally:(fun () ->
      P.set_cache_enabled was_enabled;
      P.set_cache_dir None)
    f

(* ---------- generic cache: memory tier ---------- *)

let test_hit_miss_counters () =
  let c = str_cache () in
  Alcotest.(check (option string)) "initial miss" None (Cache.find c "k1");
  Cache.add c "k1" "v1";
  Alcotest.(check (option string)) "hit" (Some "v1") (Cache.find c "k1");
  Alcotest.(check (option string)) "other key misses" None (Cache.find c "k2");
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check int) "size" 1 s.Cache.size;
  Alcotest.(check bool) "hit rate 1/3" true
    (abs_float (Cache.hit_rate s -. (1.0 /. 3.0)) < 1e-9);
  Cache.reset_stats c;
  let s = Cache.stats c in
  Alcotest.(check int) "reset hits" 0 s.Cache.hits;
  Alcotest.(check int) "reset misses" 0 s.Cache.misses;
  Alcotest.(check int) "reset keeps entries" 1 s.Cache.size

let test_find_or_compute () =
  let c = str_cache () in
  let computes = ref 0 in
  let get k =
    Cache.find_or_compute c ~key:k (fun () ->
        incr computes;
        "computed-" ^ k)
  in
  Alcotest.(check string) "computed" "computed-a" (get "a");
  Alcotest.(check string) "cached" "computed-a" (get "a");
  Alcotest.(check int) "computed once" 1 !computes;
  (* cacheable gate: value returned but never stored *)
  let v =
    Cache.find_or_compute c ~key:"b"
      ~cacheable:(fun _ -> false)
      (fun () -> "transient")
  in
  Alcotest.(check string) "uncacheable returned" "transient" v;
  Alcotest.(check (option string)) "uncacheable not stored" None
    (Cache.find c "b")

let test_lru_eviction () =
  let c = str_cache ~capacity:2 () in
  Cache.add c "a" "1";
  Cache.add c "b" "2";
  Cache.add c "c" "3";
  (* a is least-recently-used -> evicted *)
  Alcotest.(check (option string)) "a evicted" None (Cache.find c "a");
  Alcotest.(check (option string)) "b kept" (Some "2") (Cache.find c "b");
  Alcotest.(check (option string)) "c kept" (Some "3") (Cache.find c "c");
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.evictions;
  (* recency: touching b makes c the eviction victim *)
  ignore (Cache.find c "b");
  Cache.add c "d" "4";
  Alcotest.(check (option string)) "c evicted after touch" None
    (Cache.find c "c");
  Alcotest.(check (option string)) "b survived" (Some "2") (Cache.find c "b");
  (* re-adding an existing key must not grow the table *)
  Cache.add c "b" "2'";
  Alcotest.(check (option string)) "value refreshed" (Some "2'")
    (Cache.find c "b");
  Alcotest.(check int) "size bounded" 2 (Cache.stats c).Cache.size;
  Cache.clear c;
  Alcotest.(check int) "clear empties" 0 (Cache.stats c).Cache.size;
  Alcotest.(check (option string)) "clear forgets" None (Cache.find c "d")

let test_key_derivation () =
  let k = Cache.key ~version:"1" ~fingerprint:"cfg:a" "\x00\x01bytecode" in
  Alcotest.(check int) "64 hex chars" 64 (String.length k);
  Alcotest.(check bool) "filename-safe hex" true
    (String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       k);
  Alcotest.(check string) "deterministic" k
    (Cache.key ~version:"1" ~fingerprint:"cfg:a" "\x00\x01bytecode");
  let distinct =
    [ Cache.key ~version:"2" ~fingerprint:"cfg:a" "\x00\x01bytecode";
      Cache.key ~version:"1" ~fingerprint:"cfg:b" "\x00\x01bytecode";
      Cache.key ~version:"1" ~fingerprint:"cfg:a" "\x00\x01bytecodf" ]
  in
  List.iter
    (fun k' -> Alcotest.(check bool) "key separates inputs" true (k <> k'))
    distinct

(* ---------- generic cache: disk tier ---------- *)

let test_disk_roundtrip () =
  let dir = temp_dir () in
  let c1 = str_cache ~dir () in
  Cache.add c1 "deadbeef" "persisted";
  Alcotest.(check int) "written to disk" 1
    (Cache.stats c1).Cache.disk_writes;
  (* a second cache over the same directory sees the entry *)
  let c2 = str_cache ~dir () in
  Alcotest.(check (option string)) "disk hit" (Some "persisted")
    (Cache.find c2 "deadbeef");
  let s = Cache.stats c2 in
  Alcotest.(check int) "counted as disk hit" 1 s.Cache.disk_hits;
  Alcotest.(check int) "promoted to memory" 1 s.Cache.size;
  (* second lookup is a memory hit *)
  ignore (Cache.find c2 "deadbeef");
  Alcotest.(check int) "memory hit after promotion" 1
    (Cache.stats c2).Cache.hits

let test_corrupt_disk_entry_is_miss () =
  let dir = temp_dir () in
  let c1 = str_cache ~dir () in
  Cache.add c1 "cafe" "good";
  let path = Filename.concat dir "cafe.cache" in
  Alcotest.(check bool) "entry file exists" true (Sys.file_exists path);
  (* truncate/garble the entry *)
  let oc = open_out_bin path in
  output_string oc "XX garbage, wrong magic";
  close_out oc;
  let c2 = str_cache ~dir () in
  Alcotest.(check (option string)) "corrupt entry is a miss" None
    (Cache.find c2 "cafe");
  Alcotest.(check int) "counted as miss" 1 (Cache.stats c2).Cache.misses;
  Alcotest.(check bool) "corrupt file deleted" false (Sys.file_exists path)

let test_decoder_exception_is_miss () =
  let dir = temp_dir () in
  let good = str_cache ~dir () in
  Cache.add good "k" "v";
  let evil =
    Cache.create ~dir
      ~encode:(fun v -> v)
      ~decode:(fun _ -> failwith "decoder bug")
      ()
  in
  Alcotest.(check (option string)) "raising decoder is a miss" None
    (Cache.find evil "k")

let test_unsafe_keys_skip_disk () =
  let dir = temp_dir () in
  let c = str_cache ~dir () in
  (* a hostile key must not escape the cache directory *)
  Cache.add c "../escape" "v";
  Alcotest.(check bool) "no file outside dir" false
    (Sys.file_exists (Filename.concat (Filename.dirname dir) "escape.cache"));
  Alcotest.(check (option string)) "memory tier still works" (Some "v")
    (Cache.find c "../escape")

(* ---------- config fingerprint + builders ---------- *)

let test_config_fingerprint () =
  Alcotest.(check string) "stable encoding" "cfg:g1.s1.c0.r100"
    (C.fingerprint C.default);
  let variants =
    [ C.default; C.no_storage_model; C.no_guard_model; C.conservative;
      C.(default |> with_max_fixpoint_rounds 7) ]
  in
  let fps = List.map C.fingerprint variants in
  Alcotest.(check int) "fingerprint injective on variants"
    (List.length variants)
    (List.length (List.sort_uniq compare fps));
  List.iter
    (fun v ->
      Alcotest.(check string) "deterministic" (C.fingerprint v)
        (C.fingerprint v))
    variants

let test_config_builders () =
  let built =
    C.(default
       |> with_model_guards false
       |> with_storage_taint false
       |> with_conservative_storage true
       |> with_max_fixpoint_rounds 5)
  in
  Alcotest.(check bool) "guards" false built.C.model_guards;
  Alcotest.(check bool) "storage" false built.C.storage_taint;
  Alcotest.(check bool) "conservative" true built.C.conservative_storage;
  Alcotest.(check int) "rounds" 5 built.C.max_fixpoint_rounds;
  Alcotest.(check bool) "presets are builder-equal" true
    (C.no_guard_model = C.(default |> with_model_guards false))

(* ---------- result codec ---------- *)

let test_codec_roundtrip () =
  let roundtrip r =
    match P.decode_result (P.encode_result r) with
    | Some r' -> Alcotest.(check bool) "roundtrip exact" true (r = r')
    | None -> Alcotest.fail "decode of encode failed"
  in
  roundtrip P.empty_result;
  roundtrip
    { P.empty_result with
      P.timed_out = true; elapsed_s = 1.234567891234 };
  roundtrip
    { P.empty_result with
      P.error = Some "multi\nline error: with \"spaces\" and bytes \x00\x01" };
  (* a real analysis result, reports included *)
  roundtrip (P.run (P.request (P.Runtime (compile src_victim))))

let test_codec_rejects_garbage () =
  let good =
    P.encode_result (P.run (P.request (P.Runtime (compile src_victim))))
  in
  Alcotest.(check bool) "sanity: good decodes" true
    (P.decode_result good <> None);
  let bad =
    [ ""; "garbage"; "ethainter.result.v999\nmeta 0 0 0 0x0p+0 false\n";
      (* truncation *)
      String.sub good 0 (String.length good / 2);
      (* trailing junk *)
      good ^ "extra" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "corrupt payload rejected" true
        (P.decode_result s = None))
    bad

(* ---------- pipeline request API ---------- *)

let test_odd_hex_is_clean_error () =
  (* the PR1 CLI special case moved into the library: no exception,
     error field set *)
  List.iter
    (fun hex ->
      let r = P.run (P.request (P.Hex hex)) in
      Alcotest.(check bool) ("error set for " ^ hex) true (r.P.error <> None);
      Alcotest.(check int) "no reports" 0 (List.length r.P.reports))
    [ "abc"; "0xabc"; "0x60zz"; "nothex!" ]

let test_hex_input_agrees_with_runtime () =
  with_pipeline_cache (fun () ->
      let runtime = compile src_victim in
      let hex = Ethainter_word.Hex.encode runtime in
      let via_run = P.run (P.request (P.Runtime runtime)) in
      let via_hex = P.run (P.request (P.Hex hex)) in
      let via_hex0x = P.run (P.request (P.Hex ("0x" ^ hex))) in
      Alcotest.(check bool) "hex input == runtime input" true
        (normalize via_run = normalize via_hex);
      Alcotest.(check bool) "0x-prefixed hex agrees" true
        (normalize via_run = normalize via_hex0x);
      Alcotest.(check bool) "victim actually flagged" true
        (via_run.P.reports <> []))

let test_pipeline_cache_hit () =
  with_pipeline_cache (fun () ->
      let runtime = compile src_victim in
      let r1 = P.run (P.request (P.Runtime runtime)) in
      let s1 = P.cache_stats () in
      let r2 = P.run (P.request (P.Runtime runtime)) in
      let s2 = P.cache_stats () in
      Alcotest.(check bool) "identical result" true (r1 = r2);
      Alcotest.(check int) "first was a miss" 1 s1.Cache.misses;
      Alcotest.(check int) "second was a hit" (s1.Cache.hits + 1)
        s2.Cache.hits)

(* guarded-safe contract: clean under the default analysis, flagged
   once guard modeling is ablated — so serving one config's entry for
   the other would be visibly wrong *)
let src_guarded_safe = {|
contract C {
  address owner;
  constructor() { owner = msg.sender; }
  function setOwner(address o) public { require(msg.sender == owner); owner = o; }
  function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}|}

let test_config_change_invalidates () =
  with_pipeline_cache (fun () ->
      let runtime = compile src_guarded_safe in
      let r_default = P.run (P.request ~cfg:C.default (P.Runtime runtime)) in
      let misses_before = (P.cache_stats ()).Cache.misses in
      (* same bytecode, different ablation: must be a fresh computation *)
      let r_ablated =
        P.run (P.request ~cfg:C.no_guard_model (P.Runtime runtime))
      in
      let misses_after = (P.cache_stats ()).Cache.misses in
      Alcotest.(check int) "ablated config misses" (misses_before + 1)
        misses_after;
      Alcotest.(check int) "default: clean" 0
        (List.length r_default.P.reports);
      Alcotest.(check bool) "no-guard ablation: flagged" true
        (r_ablated.P.reports <> []))

let test_timeouts_not_cached () =
  with_pipeline_cache (fun () ->
      let runtime = compile src_victim in
      let r = P.run (P.request ~timeout_s:0.0 (P.Runtime runtime)) in
      Alcotest.(check bool) "times out" true r.P.timed_out;
      Alcotest.(check int) "timed-out result not stored" 0
        (P.cache_stats ()).Cache.size;
      (* cache a full result, then ask again with a zero budget: the
         hit must NOT be served (that budget would have timed out) *)
      let full = P.run (P.request (P.Runtime runtime)) in
      Alcotest.(check bool) "full run cached" true
        ((P.cache_stats ()).Cache.size = 1 && not full.P.timed_out);
      let tight = P.run (P.request ~timeout_s:0.0 (P.Runtime runtime)) in
      Alcotest.(check bool) "tight budget still times out" true
        tight.P.timed_out)

let test_scheduler_cached_equals_uncached () =
  (* the PR acceptance differential: a warm parallel re-sweep returns
     byte-identical results (modulo wall-clock) to an uncached run *)
  let corpus = G.mainnet ~seed:77 ~size:60 () in
  let runtimes =
    List.map (fun (i : G.instance) -> i.G.i_runtime) corpus
    @ [ ""; "\xfe\x01\x02garbage" ]
  in
  let baseline =
    P.set_cache_enabled false;
    Fun.protect
      ~finally:(fun () -> P.set_cache_enabled true)
      (fun () -> S.analyze_corpus ~workers:4 runtimes)
  in
  with_pipeline_cache (fun () ->
      let cold = S.analyze_corpus ~workers:4 runtimes in
      let warm = S.analyze_corpus ~workers:4 runtimes in
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "cold == uncached" true
            (normalize a = normalize b))
        cold baseline;
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "warm == uncached" true
            (normalize a = normalize b))
        warm baseline;
      let s = P.cache_stats () in
      Alcotest.(check bool) "warm sweep actually hit" true
        (s.Cache.hits >= List.length runtimes))

let test_pipeline_disk_tier () =
  let dir = temp_dir () in
  with_pipeline_cache ~dir (fun () ->
      let runtime = compile src_victim in
      let r1 = P.run (P.request (P.Runtime runtime)) in
      Alcotest.(check bool) "persisted" true
        ((P.cache_stats ()).Cache.disk_writes >= 1);
      (* drop the memory tier; the disk tier must answer *)
      P.cache_clear ();
      let r2 = P.run (P.request (P.Runtime runtime)) in
      Alcotest.(check bool) "disk hit served" true
        ((P.cache_stats ()).Cache.disk_hits = 1);
      Alcotest.(check bool) "disk result identical" true (r1 = r2);
      (* corrupt every entry: analysis must transparently recompute *)
      Array.iter
        (fun f ->
          let oc = open_out_bin (Filename.concat dir f) in
          output_string oc "not a result";
          close_out oc)
        (Sys.readdir dir);
      P.cache_clear ();
      let r3 = P.run (P.request (P.Runtime runtime)) in
      Alcotest.(check bool) "recomputed past corruption" true
        (normalize r1 = normalize r3))

let () =
  Alcotest.run "cache"
    [ ( "memory-tier",
        [ Alcotest.test_case "hit/miss counters" `Quick test_hit_miss_counters;
          Alcotest.test_case "find_or_compute" `Quick test_find_or_compute;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
          Alcotest.test_case "key derivation" `Quick test_key_derivation ] );
      ( "disk-tier",
        [ Alcotest.test_case "roundtrip" `Quick test_disk_roundtrip;
          Alcotest.test_case "corrupt entry -> miss" `Quick
            test_corrupt_disk_entry_is_miss;
          Alcotest.test_case "raising decoder -> miss" `Quick
            test_decoder_exception_is_miss;
          Alcotest.test_case "unsafe keys skip disk" `Quick
            test_unsafe_keys_skip_disk ] );
      ( "config",
        [ Alcotest.test_case "fingerprint" `Quick test_config_fingerprint;
          Alcotest.test_case "builders" `Quick test_config_builders ] );
      ( "codec",
        [ Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_codec_rejects_garbage ] );
      ( "pipeline",
        [ Alcotest.test_case "odd hex is clean error" `Quick
            test_odd_hex_is_clean_error;
          Alcotest.test_case "hex input agrees with runtime input" `Quick
            test_hex_input_agrees_with_runtime;
          Alcotest.test_case "cache hit" `Quick test_pipeline_cache_hit;
          Alcotest.test_case "config change invalidates" `Quick
            test_config_change_invalidates;
          Alcotest.test_case "timeouts not cached" `Quick
            test_timeouts_not_cached;
          Alcotest.test_case "cached == uncached (parallel)" `Quick
            test_scheduler_cached_equals_uncached;
          Alcotest.test_case "disk tier end-to-end" `Quick
            test_pipeline_disk_tier ] ) ]
