(* Testnet simulator tests: deployment, transactions, receipts,
   forking, and function-call helpers. *)

module U = Ethainter_word.Uint256
module T = Ethainter_chain.Testnet
module State = Ethainter_evm.State
module B = Ethainter_evm.Bytecode
module Op = Ethainter_evm.Opcode

let funded_net () =
  let net = T.create () in
  let a = T.account_of_seed "alice" in
  let b = T.account_of_seed "bob" in
  T.fund_account net a (U.of_string "1000000000000000000");
  T.fund_account net b (U.of_string "1000000000000000000");
  (net, a, b)

(* runtime returning the constant 5 *)
let runtime_five =
  B.assemble
    [ B.Push (U.of_int 5); B.Push U.zero; B.Op Op.MSTORE;
      B.Push (U.of_int 32); B.Push U.zero; B.Op Op.RETURN ]

let test_accounts_deterministic () =
  Alcotest.(check bool) "same seed same account" true
    (U.equal (T.account_of_seed "x") (T.account_of_seed "x"));
  Alcotest.(check bool) "different seeds differ" false
    (U.equal (T.account_of_seed "x") (T.account_of_seed "y"));
  (* address range: 160 bits *)
  Alcotest.(check bool) "address fits 160 bits" true
    (U.lt (T.account_of_seed "x") (U.shift_left U.one 160))

let test_deploy_and_call () =
  let net, a, _ = funded_net () in
  let r = T.deploy_runtime net ~from:a runtime_five in
  (match r.T.created with
  | Some addr ->
      Alcotest.(check bool) "alive" true (T.is_alive net addr);
      let rc = T.transact net ~from:a ~to_:addr "" in
      (match T.return_word rc with
      | Some v -> Alcotest.(check string) "returns 5" "0x5" (U.to_hex v)
      | None -> Alcotest.fail "no return word")
  | None -> Alcotest.fail "deploy failed")

let test_distinct_addresses () =
  let net, a, _ = funded_net () in
  let r1 = T.deploy_runtime net ~from:a runtime_five in
  let r2 = T.deploy_runtime net ~from:a runtime_five in
  match (r1.T.created, r2.T.created) with
  | Some a1, Some a2 ->
      Alcotest.(check bool) "nonce separates addresses" false (U.equal a1 a2)
  | _ -> Alcotest.fail "deploys failed"

let test_value_transfer_on_tx () =
  let net, a, b = funded_net () in
  let before = State.balance (T.state net) b in
  let _ = T.transact net ~from:a ~to_:b ~value:(U.of_int 12345) "" in
  let after = State.balance (T.state net) b in
  Alcotest.(check string) "received" "0x3039" (U.to_hex (U.sub after before))

let test_fork_isolation () =
  let net, a, _ = funded_net () in
  let r = T.deploy_runtime net ~from:a runtime_five in
  let addr = match r.T.created with Some x -> x | None -> assert false in
  let fork = T.fork net in
  (* destroy on the fork only *)
  State.selfdestruct (T.state fork) ~victim:addr ~beneficiary:a;
  Alcotest.(check bool) "fork destroyed" false (T.is_alive fork addr);
  Alcotest.(check bool) "original untouched" true (T.is_alive net addr)

let test_call_fn_selector () =
  (* compile a MiniSol contract; call by signature *)
  let src = {|
contract Adder {
  uint256 acc;
  function add(uint256 x) public returns (uint256) {
    acc = acc + x;
    return acc;
  }
}|} in
  let net, a, _ = funded_net () in
  let r = T.deploy net ~from:a (Ethainter_minisol.Codegen.compile_source src) in
  let addr = match r.T.created with Some x -> x | None -> assert false in
  let r1 = T.call_fn net ~from:a ~to_:addr "add(uint256)" [ U.of_int 5 ] in
  let r2 = T.call_fn net ~from:a ~to_:addr "add(uint256)" [ U.of_int 7 ] in
  (match (T.return_word r1, T.return_word r2) with
  | Some v1, Some v2 ->
      Alcotest.(check string) "first" "0x5" (U.to_hex v1);
      Alcotest.(check string) "accumulated" "0xc" (U.to_hex v2)
  | _ -> Alcotest.fail "calls failed");
  (* wrong selector reverts *)
  let bad = T.call_fn net ~from:a ~to_:addr "nosuch()" [] in
  Alcotest.(check bool) "unknown selector reverts" false (T.succeeded bad)

let test_receipts_recorded () =
  let net, a, b = funded_net () in
  let _ = T.transact net ~from:a ~to_:b "" in
  let _ = T.transact net ~from:b ~to_:a "" in
  Alcotest.(check bool) "block number advanced" true (T.block_number net >= 2)

let test_event_logs () =
  (* events emitted via LOG1 appear on the receipt; reverted txs drop
     their logs *)
  let src = {|
contract Events {
  uint256 n;
  function fire(uint256 x) public {
    require(x < 100);
    n = n + 1;
    log_event(42, x);
  }
}|} in
  let net, a, _ = funded_net () in
  let r = T.deploy net ~from:a (Ethainter_minisol.Codegen.compile_source src) in
  let addr = match r.T.created with Some x -> x | None -> assert false in
  let rc = T.call_fn net ~from:a ~to_:addr "fire(uint256)" [ U.of_int 7 ] in
  (match rc.T.logs with
  | [ log ] ->
      Alcotest.(check string) "topic" "0x2a"
        (U.to_hex (List.hd log.Ethainter_evm.Interp.topics));
      Alcotest.(check string) "data word" "0x7"
        (U.to_hex (U.of_bytes log.Ethainter_evm.Interp.data))
  | logs ->
      Alcotest.fail (Printf.sprintf "expected 1 log, got %d" (List.length logs)));
  (* a reverting call emits nothing *)
  let bad = T.call_fn net ~from:a ~to_:addr "fire(uint256)" [ U.of_int 500 ] in
  Alcotest.(check bool) "reverted" false (T.succeeded bad);
  Alcotest.(check int) "no logs on revert" 0 (List.length bad.T.logs)

let test_gas_accounting () =
  let net, a, _ = funded_net () in
  let r = T.deploy_runtime net ~from:a runtime_five in
  let addr = match r.T.created with Some x -> x | None -> assert false in
  let rc = T.transact net ~from:a ~to_:addr "" in
  Alcotest.(check bool) "gas used positive" true (rc.T.gas_used > 0);
  Alcotest.(check bool) "gas used bounded" true (rc.T.gas_used < 100_000)

let test_failed_deploy_rolls_back () =
  let net, a, _ = funded_net () in
  (* deployment code that reverts *)
  let initcode =
    B.assemble [ B.Push U.zero; B.Push U.zero; B.Op Op.REVERT ]
  in
  let r = T.deploy net ~from:a initcode in
  Alcotest.(check bool) "no contract created" true (r.T.created = None)

(* ---------- block observation (streaming-index feed) ---------- *)

let blocky_src = {|
contract Blocky {
  address owner;
  uint256 n;
  constructor() { owner = msg.sender; }
  function bump() public { n = n + 1; }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}

let deploy_blocky net from =
  let r =
    T.deploy net ~from (Ethainter_minisol.Codegen.compile_source blocky_src)
  in
  match r.T.created with Some a -> a | None -> assert false

let test_blocks_carry_effects () =
  let net, a, _ = funded_net () in
  let addr = deploy_blocky net a in
  ignore (T.call_fn net ~from:a ~to_:addr "bump()" []);
  ignore (T.call_fn net ~from:a ~to_:addr "kill()" []);
  let blocks = T.blocks_since net 0 in
  Alcotest.(check bool) "one block per transaction" true
    (List.length blocks >= 3);
  (* ascending, consecutive numbering *)
  List.iteri
    (fun i (b : T.block) ->
      Alcotest.(check int) "block number ascending" (i + 1) b.T.b_number)
    blocks;
  let deploy_b = List.nth blocks (List.length blocks - 3) in
  let bump_b = List.nth blocks (List.length blocks - 2) in
  let kill_b = List.nth blocks (List.length blocks - 1) in
  (match deploy_b.T.b_deployed with
  | [ (da, code) ] ->
      Alcotest.(check bool) "deployed address" true (U.equal da addr);
      Alcotest.(check bool) "deployed runtime nonempty" true
        (String.length code > 0)
  | l -> Alcotest.failf "expected 1 deployment, got %d" (List.length l));
  Alcotest.(check bool) "bump writes slot 1" true
    (List.exists
       (fun (c, s) -> U.equal c addr && U.equal s U.one)
       bump_b.T.b_storage_writes);
  Alcotest.(check bool) "kill block lists the selfdestruct" true
    (List.exists (U.equal addr) kill_b.T.b_selfdestructed);
  Alcotest.(check bool) "dead contracts leave live_contracts" true
    (not (List.exists (fun (c, _) -> U.equal c addr) (T.live_contracts net)))

let test_on_block_matches_pull () =
  let net, a, _ = funded_net () in
  let seen = ref [] in
  let mark = T.block_number net in
  T.on_block net (fun b -> seen := b :: !seen);
  let addr = deploy_blocky net a in
  ignore (T.call_fn net ~from:a ~to_:addr "bump()" []);
  Alcotest.(check bool) "push stream equals pull stream" true
    (List.rev !seen = T.blocks_since net mark)

let test_in_block_batches () =
  let net, a, _ = funded_net () in
  let addr = deploy_blocky net a in
  let before = T.block_number net in
  let sealed = ref [] in
  T.on_block net (fun b -> sealed := b :: !sealed);
  T.in_block net (fun () ->
      ignore (T.call_fn net ~from:a ~to_:addr "bump()" []);
      ignore (T.call_fn net ~from:a ~to_:addr "bump()" []));
  Alcotest.(check int) "one block for the batch" (before + 1)
    (T.block_number net);
  match !sealed with
  | [ b ] ->
      Alcotest.(check int) "both receipts in the block" 2
        (List.length b.T.b_receipts);
      (* the two writes to the same slot are deduplicated *)
      Alcotest.(check int) "writes deduplicated" 1
        (List.length
           (List.filter (fun (c, _) -> U.equal c addr) b.T.b_storage_writes))
  | l -> Alcotest.failf "expected 1 sealed block, got %d" (List.length l)

let () =
  Alcotest.run "chain"
    [ ( "testnet",
        [ Alcotest.test_case "deterministic accounts" `Quick
            test_accounts_deterministic;
          Alcotest.test_case "deploy and call" `Quick test_deploy_and_call;
          Alcotest.test_case "distinct addresses" `Quick
            test_distinct_addresses;
          Alcotest.test_case "value transfer" `Quick test_value_transfer_on_tx;
          Alcotest.test_case "fork isolation" `Quick test_fork_isolation;
          Alcotest.test_case "call by signature" `Quick test_call_fn_selector;
          Alcotest.test_case "receipts" `Quick test_receipts_recorded;
          Alcotest.test_case "event logs" `Quick test_event_logs;
          Alcotest.test_case "gas accounting" `Quick test_gas_accounting;
          Alcotest.test_case "failed deploy" `Quick
            test_failed_deploy_rolls_back ] );
      ( "blocks",
        [ Alcotest.test_case "blocks carry effects" `Quick
            test_blocks_carry_effects;
          Alcotest.test_case "push equals pull" `Quick
            test_on_block_matches_pull;
          Alcotest.test_case "in_block batches" `Quick test_in_block_batches ] )
    ]
