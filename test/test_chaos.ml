(* Chaos suite (PR 4): seeded fault injection driven through the
   corpus sweep, plus the deadline-enforcement acceptance tests.

   What must hold under injected faults (poll-site exceptions,
   simulated OOM, failing disk I/O, corrupted cache payloads):
   - the worker pool never dies — every contract comes back with a
     result;
   - results are deterministic per fault seed;
   - caching stays observationally transparent (cached == uncached);
   - a corrupted cache entry is never served (the self-validating
     codecs turn silent corruption into recomputation);
   - the disk tier degrades to memory-only instead of failing the
     sweep (io_errors counted, entries skipped, requests unharmed);
   - transient faults get one bounded retry.

   And with no faults at all, the preemptive deadline must cut
   adversarial bytecode mid-loop within 1.25x the budget. *)

module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module C = Ethainter_core.Config
module Cache = Ethainter_core.Cache
module F = Ethainter_core.Fault
module G = Ethainter_corpus.Generator

let normalize (r : P.result) = { r with P.elapsed_s = 0.0 }

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ethainter_chaos_%d_%d" (Unix.getpid ()) !counter)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let with_pipeline_cache ?dir f =
  let was_enabled = P.cache_enabled () in
  P.set_cache_enabled true;
  P.set_cache_dir dir;  (* also resets both memory tiers *)
  P.cache_clear ();
  Fun.protect
    ~finally:(fun () ->
      P.set_cache_enabled was_enabled;
      P.set_cache_dir None)
    f

let with_faults spec f =
  F.configure (Some spec);
  F.reset_injected_count ();
  Fun.protect ~finally:(fun () -> F.configure None) f

(* [S.retries_performed] is a process-wide monotonic counter (the PR 7
   redesign removed the racy reset): observe a window by diffing
   against a baseline taken at its start. *)
let retries_during f =
  let before = S.retries_performed () in
  let v = f () in
  (v, S.retries_performed () - before)

let all_configs =
  [ ("default", C.default);
    ("no-storage", C.no_storage_model);
    ("no-guards", C.no_guard_model);
    ("conservative", C.conservative) ]

(* >= 100 distinct runtimes: fault determinism is keyed per contract,
   so duplicate bytecodes (which race on the shared cache) would make
   per-run draw counts depend on scheduling *)
let corpus_runtimes ~seed ~size =
  let corpus = G.mainnet ~seed ~size () in
  List.sort_uniq compare
    (List.map (fun (i : G.instance) -> i.G.i_runtime) corpus)

(* ------------------------------------------------------------------ *)
(* Fault module basics                                                 *)
(* ------------------------------------------------------------------ *)

let test_spec_parsing () =
  F.configure (Some "poll=0.5,disk_read=0.25:42");
  Alcotest.(check bool) "armed" true (F.enabled ());
  Alcotest.(check (option string)) "canonical spec"
    (Some "poll=0.5,disk_read=0.25:42") (F.spec ());
  F.configure None;
  Alcotest.(check bool) "disarmed" false (F.enabled ());
  Alcotest.(check (option string)) "no spec" None (F.spec ());
  List.iter
    (fun bad ->
      match F.configure (Some bad) with
      | () -> Alcotest.failf "bad spec %S accepted" bad
      | exception Invalid_argument _ -> ())
    [ "poll=0.5"; "nope=1:3"; "poll=x:3"; "poll=1.5:3"; "poll=0.5:x"; "" ]

let test_corrupt_deterministic () =
  with_faults "corrupt=1.0:7" (fun () ->
      F.set_context ~key:"contract-a";
      let payload = String.make 64 'A' in
      let c1 = F.corrupt payload in
      F.set_context ~key:"contract-a";
      let c2 = F.corrupt payload in
      Alcotest.(check bool) "corruption changes the payload" true
        (c1 <> payload);
      Alcotest.(check int) "same length" (String.length payload)
        (String.length c1);
      Alcotest.(check string) "deterministic per (seed, key)" c1 c2;
      (* one flipped bit *)
      let diff = ref 0 in
      String.iteri
        (fun i ch ->
          let x = Char.code ch lxor Char.code payload.[i] in
          let rec bits v = if v = 0 then 0 else (v land 1) + bits (v lsr 1) in
          diff := !diff + bits x)
        c1;
      Alcotest.(check int) "exactly one bit flipped" 1 !diff)

let test_unconfigured_hooks_are_noops () =
  F.configure None;
  F.reset_injected_count ();
  F.set_context ~key:"x";
  F.poll_site ();
  F.io_site F.Disk_read;
  Alcotest.(check string) "corrupt is identity" "abc" (F.corrupt "abc");
  Alcotest.(check int) "nothing fired" 0 (F.injected_count ())

(* ------------------------------------------------------------------ *)
(* The chaos sweep                                                     *)
(* ------------------------------------------------------------------ *)

(* Rates tuned so per-contract failure stays a minority even for
   contracts with many poll sites, while every site still fires often
   enough across a 100+-contract sweep to exercise its path. *)
let chaos_spec =
  "poll=0.005,oom=0.002,disk_read=0.3,disk_write=0.3,corrupt=0.5:1234"

let chaos_sweep runtimes =
  List.map
    (fun (_, cfg) ->
      S.analyze_requests ~workers:4
        (List.map (fun code -> P.request ~cfg (P.Runtime code)) runtimes))
    all_configs

let test_pool_survives_chaos () =
  (* >= 100 contracts x 4 configs under every fault site at once: the
     pool must return a result for every contract, faults surfacing
     only as classified per-contract errors *)
  let runtimes = corpus_runtimes ~seed:31 ~size:110 in
  Alcotest.(check bool) ">= 100 distinct contracts" true
    (List.length runtimes >= 100);
  let dir = temp_dir () in
  with_faults chaos_spec (fun () ->
      with_pipeline_cache ~dir (fun () ->
          let sweeps = chaos_sweep runtimes in
          List.iter
            (fun results ->
              Alcotest.(check int) "every contract accounted for"
                (List.length runtimes) (List.length results);
              List.iter
                (fun (r : P.result) ->
                  Alcotest.(check bool) "no budget blown under faults" false
                    r.P.timed_out;
                  match r.P.error with
                  | None -> ()
                  | Some _ ->
                      Alcotest.(check bool) "failures are classified" true
                        (r.P.error_kind <> None))
                results)
            sweeps;
          (* some faults must actually have fired for this to test
             anything *)
          Alcotest.(check bool) "faults fired" true (F.injected_count () > 0);
          let io_errors =
            (P.frontend_cache_stats ()).Cache.io_errors
            + (P.cache_stats ()).Cache.io_errors
          in
          Alcotest.(check bool) "disk tier degraded, not the sweep" true
            (io_errors > 0);
          (* the sweep substantially succeeded: faults are per-contract
             noise, not systemic failure *)
          let total = 4 * List.length runtimes in
          let failed =
            List.fold_left
              (fun acc results ->
                acc
                + List.length
                    (List.filter (fun r -> r.P.error <> None) results))
              0 sweeps
          in
          Alcotest.(check bool) "majority of contracts analyzed" true
            (failed * 2 < total)))

let test_chaos_deterministic_per_seed () =
  (* two cold runs under the same fault seed: byte-identical results
     (modulo wall clock), independent of disk-tier timing *)
  let runtimes = corpus_runtimes ~seed:32 ~size:40 in
  let run () =
    let dir = temp_dir () in
    with_faults chaos_spec (fun () ->
        with_pipeline_cache ~dir (fun () -> chaos_sweep runtimes))
  in
  let a = run () in
  let b = run () in
  List.iteri
    (fun ci (ra, rb) ->
      let name = fst (List.nth all_configs ci) in
      List.iter2
        (fun x y ->
          Alcotest.(check bool)
            ("deterministic per seed: " ^ name) true
            (normalize x = normalize y))
        ra rb)
    (List.combine a b)

let test_cached_uncached_under_disk_faults () =
  (* disk-tier faults (failed reads/writes, corrupted payloads) must
     be invisible in the results: cold and disk-warm sweeps under
     injection match a clean uncached run *)
  let runtimes = corpus_runtimes ~seed:33 ~size:40 in
  let clean =
    P.set_cache_enabled false;
    Fun.protect
      ~finally:(fun () -> P.set_cache_enabled true)
      (fun () ->
        List.map
          (fun (_, cfg) -> S.analyze_corpus ~cfg ~workers:4 runtimes)
          all_configs)
  in
  let dir = temp_dir () in
  with_faults "disk_read=0.35,disk_write=0.35,corrupt=0.6:99" (fun () ->
      with_pipeline_cache ~dir (fun () ->
          let sweep () = chaos_sweep runtimes in
          let cold = sweep () in
          (* "new process": memory tiers dropped, disk survivors only *)
          P.cache_clear ();
          let warm = sweep () in
          List.iteri
            (fun ci ((cfg_cold, cfg_warm), cfg_clean) ->
              let name = fst (List.nth all_configs ci) in
              List.iter2
                (fun x y ->
                  Alcotest.(check bool) ("cold == uncached: " ^ name) true
                    (normalize x = normalize y))
                cfg_cold cfg_clean;
              List.iter2
                (fun x y ->
                  Alcotest.(check bool) ("disk-warm == uncached: " ^ name)
                    true
                    (normalize x = normalize y))
                cfg_warm cfg_clean)
            (List.combine (List.combine cold warm) clean)))

let test_no_poisoned_entry_served () =
  (* every disk write corrupted: after a memory-tier flush, every disk
     entry must fail its digest and be recomputed — zero disk hits,
     results identical to a clean run *)
  let runtimes = corpus_runtimes ~seed:34 ~size:25 in
  let clean =
    P.set_cache_enabled false;
    Fun.protect
      ~finally:(fun () -> P.set_cache_enabled true)
      (fun () -> S.analyze_corpus ~workers:4 runtimes)
  in
  let dir = temp_dir () in
  with_faults "corrupt=1.0:5" (fun () ->
      with_pipeline_cache ~dir (fun () ->
          ignore (S.analyze_corpus ~workers:4 runtimes);
          Alcotest.(check bool) "corruptions fired" true
            (F.injected_count () > 0);
          P.cache_clear ();
          let warm = S.analyze_corpus ~workers:4 runtimes in
          let fe = P.frontend_cache_stats () in
          let be = P.cache_stats () in
          Alcotest.(check int) "no corrupt front-end artifact served" 0
            fe.Cache.disk_hits;
          Alcotest.(check int) "no corrupt result served" 0
            be.Cache.disk_hits;
          List.iter2
            (fun x y ->
              Alcotest.(check bool) "recomputed results correct" true
                (normalize x = normalize y))
            warm clean))

(* ------------------------------------------------------------------ *)
(* Degradation and retry                                               *)
(* ------------------------------------------------------------------ *)

let test_disk_tier_degrades_to_memory_only () =
  (* every disk read fails: lookups fall back to recomputation, the
     io_error counter climbs to the degradation bound, and the tier
     switches off — all without failing a single request *)
  let dir = temp_dir () in
  let mk () =
    Cache.create ~dir
      ~encode:(fun v -> "S1\n" ^ v)
      ~decode:(fun s ->
        if String.length s >= 3 && String.sub s 0 3 = "S1\n" then
          Some (String.sub s 3 (String.length s - 3))
        else None)
      ()
  in
  (* populate with faults off *)
  let w = mk () in
  for i = 1 to 20 do
    Cache.add w (Printf.sprintf "key%04d" i) "value"
  done;
  Alcotest.(check int) "all persisted" 20 (Cache.stats w).Cache.disk_writes;
  with_faults "disk_read=1.0:11" (fun () ->
      let c = mk () in  (* cold memory tier: every find goes to disk *)
      for i = 1 to 20 do
        Alcotest.(check (option string))
          "read failure degrades to miss, request unharmed" None
          (Cache.find c (Printf.sprintf "key%04d" i))
      done;
      let s = Cache.stats c in
      Alcotest.(check bool) "io errors counted" true (s.Cache.io_errors > 0);
      Alcotest.(check bool) "tier switched off at the bound" true
        (s.Cache.io_errors < 20);
      (* memory tier still fully functional *)
      Cache.add c "memkey" "memvalue";
      Alcotest.(check (option string)) "memory tier unaffected"
        (Some "memvalue") (Cache.find c "memkey"))

(* Bytecode big enough that analysis polls the deadline many times:
   a long chain of mapping-guarded escalation levels keeps the
   fixpoint busy for one round per level. *)
let chain_escalation_src n =
  let b = Buffer.create 4096 in
  Buffer.add_string b "contract Chain {\n";
  for k = 0 to n do
    Printf.bprintf b "  mapping(address => bool) l%d;\n" k
  done;
  Buffer.add_string b "  address owner;\n";
  Buffer.add_string b
    "  function enter(address a) public { l0[a] = true; }\n";
  for k = 1 to n do
    Printf.bprintf b
      "  function step%d(address a) public { require(l%d[msg.sender]); l%d[a] = true; }\n"
      k (k - 1) k
  done;
  Printf.bprintf b
    "  function kill() public { require(l%d[msg.sender]); selfdestruct(owner); }\n"
    n;
  Buffer.add_string b "}";
  Buffer.contents b

let chain_runtime =
  lazy (Ethainter_minisol.Codegen.compile_source_runtime
          (chain_escalation_src 60))

let test_transient_faults_retried () =
  P.set_cache_enabled false;
  Fun.protect
    ~finally:(fun () -> P.set_cache_enabled true)
    (fun () ->
      (* a certain poll fault: attempt 0 dies, the retry (attempt 1)
         dies too — the result must carry the transient classification *)
      with_faults "poll=1.0:21" (fun () ->
          let r, retried =
            retries_during (fun () ->
                S.analyze_request
                  (P.request (P.Runtime (Lazy.force chain_runtime))))
          in
          Alcotest.(check int) "exactly one retry" 1 retried;
          Alcotest.(check bool) "still failed after retry" true
            (r.P.error <> None);
          Alcotest.(check bool) "classified transient (Io)" true
            (r.P.error_kind = Some P.Io);
          (match r.P.error with
          | Some msg ->
              let mentions sub =
                let n = String.length msg and m = String.length sub in
                let rec go i =
                  i + m <= n && (String.sub msg i m = sub || go (i + 1))
                in
                go 0
              in
              Alcotest.(check bool) "message names the injected fault" true
                (mentions "injected")
          | None -> ()));
      (* a certain OOM: fatal, not retried *)
      with_faults "oom=1.0:22" (fun () ->
          let r, retried =
            retries_during (fun () ->
                S.analyze_request
                  (P.request (P.Runtime (Lazy.force chain_runtime))))
          in
          Alcotest.(check int) "fatal faults are not retried" 0 retried;
          Alcotest.(check bool) "classified Fatal" true
            (r.P.error_kind = Some P.Fatal));
      (* at a realistic rate over a corpus, some attempt-0 failures
         must be rescued by the retry *)
      with_faults "poll=0.5:23" (fun () ->
          let runtimes = corpus_runtimes ~seed:35 ~size:40 in
          let rs, retried =
            retries_during (fun () -> S.analyze_corpus ~workers:4 runtimes)
          in
          Alcotest.(check bool) "some retries happened" true (retried > 0);
          Alcotest.(check bool) "pool survived the storm" true
            (List.length rs = List.length runtimes)))

(* ------------------------------------------------------------------ *)
(* Deadline enforcement (no faults)                                    *)
(* ------------------------------------------------------------------ *)

(* Adversarial runtime: [n] basic blocks, block k = JUMPDEST; PUSH2
   addr(k+1); JUMP — a long jump chain the decompiler's abstract
   interpretation must walk block by block, pass after pass. Before
   the polled deadline, a tight budget only took effect after the
   whole decompilation finished. *)
let jump_chain_bytecode n =
  let b = Buffer.create (5 * (n + 1)) in
  (* block k sits at 5k: JUMPDEST(1) PUSH2(3) JUMP(1) *)
  for k = 0 to n - 1 do
    let target = if k = n - 1 then 0 else 5 * (k + 1) in
    Buffer.add_char b '\x5b';                         (* JUMPDEST *)
    Buffer.add_char b '\x61';                         (* PUSH2 *)
    Buffer.add_char b (Char.chr ((target lsr 8) land 0xff));
    Buffer.add_char b (Char.chr (target land 0xff));
    Buffer.add_char b '\x56'                          (* JUMP *)
  done;
  Buffer.contents b

let check_bounded ~budget ~wall label =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.4fs within 1.25x of %.4fs budget" label wall
       budget)
    true
    (wall <= (1.25 *. budget) +. 0.05)

let test_adversarial_decompile_bounded () =
  P.set_cache_enabled false;
  Fun.protect
    ~finally:(fun () -> P.set_cache_enabled true)
    (fun () ->
      let code = jump_chain_bytecode 20000 in
      (* calibrate: how long does it run unbounded? *)
      let t0 = Unix.gettimeofday () in
      let full = P.run (P.request ~timeout_s:3600.0 (P.Runtime code)) in
      let clean_s = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "clean run completes" false full.P.timed_out;
      Alcotest.(check bool) "adversarial input is actually slow" true
        (clean_s > 0.05);
      let budget = Float.max 0.02 (clean_s /. 5.0) in
      let t0 = Unix.gettimeofday () in
      let r = P.run (P.request ~timeout_s:budget (P.Runtime code)) in
      let wall = Unix.gettimeofday () -. t0 in
      Alcotest.(check bool) "cut mid-decompilation" true r.P.timed_out;
      Alcotest.(check bool) "classified Timeout" true
        (r.P.error_kind = Some P.Timeout);
      Alcotest.(check bool) "real elapsed time reported" true
        (r.P.elapsed_s > 0.0);
      check_bounded ~budget ~wall "decompiler deadline");
  (* and a timed-out result must never be cached *)
  with_pipeline_cache (fun () ->
      let code = jump_chain_bytecode 20000 in
      let r = P.run (P.request ~timeout_s:0.02 (P.Runtime code)) in
      Alcotest.(check bool) "times out under cache too" true r.P.timed_out;
      let before = (P.cache_stats ()).Cache.size in
      ignore (P.run (P.request ~timeout_s:0.02 (P.Runtime code)));
      Alcotest.(check int) "timed-out result not cached"
        before (P.cache_stats ()).Cache.size)

let test_mid_fixpoint_timeout_bounded () =
  (* the satellite regression: a contract whose *fixpoint* (not
     decompilation) exceeds a tiny budget must return within 1.25x of
     it, carrying the completed front-end stats *)
  let fe =
    match
      P.compute_frontend ~timeout_s:3600.0 (Lazy.force chain_runtime)
    with
    | Ok fe -> { fe with P.fe_elapsed_s = 0.0 }
    | Error _ -> Alcotest.fail "front end unexpectedly timed out"
  in
  (* calibrate the clean back-end cost *)
  let t0 = Unix.gettimeofday () in
  let full = P.backend ~cfg:C.default fe in
  let clean_s = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "clean fixpoint completes" false full.P.timed_out;
  Alcotest.(check bool) "escalation chain runs many rounds" true
    (full.P.analysis_rounds > 10);
  let budget = Float.max 0.005 (clean_s /. 5.0) in
  let t0 = Unix.gettimeofday () in
  let r = P.backend ~cfg:C.default ~timeout_s:budget fe in
  let wall = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "cut mid-fixpoint" true r.P.timed_out;
  Alcotest.(check bool) "classified Timeout" true
    (r.P.error_kind = Some P.Timeout);
  Alcotest.(check int) "front-end stats kept: tac_loc" fe.P.fe_tac_loc
    r.P.tac_loc;
  Alcotest.(check int) "front-end stats kept: blocks" fe.P.fe_blocks
    r.P.blocks;
  check_bounded ~budget ~wall "fixpoint deadline"

(* ------------------------------------------------------------------ *)
(* Disk-tier housekeeping satellites                                   *)
(* ------------------------------------------------------------------ *)

let str_cache ?max_bytes ~dir () =
  Cache.create ~dir ?max_bytes
    ~encode:(fun v -> "S1\n" ^ v)
    ~decode:(fun s ->
      if String.length s >= 3 && String.sub s 0 3 = "S1\n" then
        Some (String.sub s 3 (String.length s - 3))
      else None)
    ()

let entry_file dir k = Filename.concat dir (k ^ ".cache")

let age_file path seconds =
  let old = Unix.gettimeofday () -. seconds in
  Unix.utimes path old old

let test_disk_bound_evicts_oldest () =
  let dir = temp_dir () in
  (* each entry is 103 bytes on disk; bound holds two *)
  let c = str_cache ~max_bytes:210 ~dir () in
  let v = String.make 100 'x' in
  Cache.add c "aaaa" v;
  Alcotest.(check bool) "first entry on disk" true
    (Sys.file_exists (entry_file dir "aaaa"));
  (* make the first entry unambiguously the oldest *)
  age_file (entry_file dir "aaaa") 1000.0;
  Cache.add c "bbbb" v;
  age_file (entry_file dir "bbbb") 500.0;
  Cache.add c "cccc" v;
  Alcotest.(check bool) "oldest entry evicted" false
    (Sys.file_exists (entry_file dir "aaaa"));
  Alcotest.(check bool) "second entry survives" true
    (Sys.file_exists (entry_file dir "bbbb"));
  Alcotest.(check bool) "newest entry survives" true
    (Sys.file_exists (entry_file dir "cccc"));
  Alcotest.(check bool) "eviction counted" true
    ((Cache.stats c).Cache.evictions > 0);
  (* the evicted entry is a clean miss, not an error *)
  let fresh = str_cache ~max_bytes:210 ~dir () in
  Alcotest.(check (option string)) "evicted entry misses" None
    (Cache.find fresh "aaaa");
  Alcotest.(check (option string)) "survivor still served" (Some v)
    (Cache.find fresh "cccc")

let test_unbounded_tier_never_evicts () =
  let dir = temp_dir () in
  let c = str_cache ~dir () in
  let v = String.make 100 'x' in
  for i = 1 to 50 do
    Cache.add c (Printf.sprintf "key%04d" i) v
  done;
  Alcotest.(check int) "no disk evictions without a bound" 0
    (Cache.stats c).Cache.evictions;
  Alcotest.(check bool) "all entries on disk" true
    (Sys.file_exists (entry_file dir "key0001"))

let test_stale_tmp_sweep () =
  let dir = temp_dir () in
  (* a real entry, which the sweep must never touch, even when old... *)
  let seed = str_cache ~dir () in
  Cache.add seed "aaaa" "value";
  age_file (entry_file dir "aaaa") 3600.0;
  let write name =
    let oc = open_out_bin (Filename.concat dir name) in
    output_string oc "partial write";
    close_out oc
  in
  (* ...a crashed writer's leftover... *)
  write ".dead.tmp.999.0";
  age_file (Filename.concat dir ".dead.tmp.999.0") 3600.0;
  (* ...and a live writer's in-flight temp file *)
  write ".live.tmp.1000.0";
  let _c = str_cache ~dir () in
  Alcotest.(check bool) "stale tmp swept" false
    (Sys.file_exists (Filename.concat dir ".dead.tmp.999.0"));
  Alcotest.(check bool) "fresh tmp kept (live writer protected)" true
    (Sys.file_exists (Filename.concat dir ".live.tmp.1000.0"));
  Alcotest.(check bool) "old real entries kept" true
    (Sys.file_exists (entry_file dir "aaaa"))

(* ------------------------------------------------------------------ *)
(* PR 6: the daemon under chaos. Seeded disk and cache-corruption      *)
(* faults while serving concurrent clients must degrade exactly as the *)
(* PR 4 policy says — skip the disk tier, recompute corrupt entries —  *)
(* never poison a response and never kill the daemon loop.             *)
(* ------------------------------------------------------------------ *)

let test_daemon_under_faults () =
  let module Server = Ethainter_serve.Server in
  let module Client = Ethainter_serve.Client in
  let module Hex = Ethainter_word.Hex in
  let runtimes = corpus_runtimes ~seed:36 ~size:40 in
  (* clean ground truth first: no faults, no cache *)
  let was_enabled = P.cache_enabled () in
  P.set_cache_enabled false;
  let paired =
    List.map
      (fun rt ->
        ( Hex.encode rt,
          normalize (S.analyze_request (P.request (P.Runtime rt))) ))
      runtimes
  in
  P.set_cache_enabled was_enabled;
  let dir = temp_dir () in
  (* disk and corruption faults only: PR 4's degradation policy makes
     these invisible in results (Io is retried/degraded, corrupt cache
     entries are recomputed), so every served response must be
     byte-identical to the clean run — while three clients race on the
     shared, actively-faulting cache *)
  with_faults "disk_read=0.35,disk_write=0.35,corrupt=0.6:41" (fun () ->
      with_pipeline_cache ~dir (fun () ->
          let server = Server.create ~workers:2 ~queue_depth:64 () in
          let mismatches = Atomic.make 0 in
          let run_client () =
            let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            let reader =
              Thread.create (fun () -> Server.serve_connection server a) ()
            in
            let client = Client.of_fd b in
            (* two passes: the second is served against cache tiers
               that the faults have been corrupting all along *)
            for _pass = 1 to 2 do
              List.iter
                (fun (hex, expected) ->
                  match Client.analyze client ~hex () with
                  | Client.Result r ->
                      if normalize r <> expected then Atomic.incr mismatches
                  | _ -> Atomic.incr mismatches)
                paired
            done;
            Client.close client;
            (* join before closing [a]: three clients race here, and a
               recycled descriptor number must not receive another
               connection's late response *)
            Thread.join reader;
            (try Unix.close a with _ -> ())
          in
          let threads = List.init 3 (fun _ -> Thread.create run_client ()) in
          List.iter Thread.join threads;
          Alcotest.(check int) "no poisoned or failed responses" 0
            (Atomic.get mismatches);
          (* the daemon loop survived: a fresh connection still serves *)
          let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          let reader =
            Thread.create (fun () -> Server.serve_connection server a) ()
          in
          let client = Client.of_fd b in
          Alcotest.(check bool) "daemon alive after chaos" true
            (Client.ping client);
          let st = Client.stats client in
          (match List.assoc_opt "served_ok" st with
          | Some v ->
              Alcotest.(check bool) "all requests served ok" true
                (v >= float_of_int (2 * 3 * List.length paired))
          | None -> Alcotest.fail "stats missing served_ok");
          Client.close client;
          Thread.join reader;
          (try Unix.close a with _ -> ());
          Server.stop server))

let () =
  Alcotest.run "chaos"
    [ ( "fault-module",
        [ Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
          Alcotest.test_case "corruption deterministic" `Quick
            test_corrupt_deterministic;
          Alcotest.test_case "unconfigured hooks are no-ops" `Quick
            test_unconfigured_hooks_are_noops ] );
      ( "chaos-sweep",
        [ Alcotest.test_case "pool survives full chaos" `Quick
            test_pool_survives_chaos;
          Alcotest.test_case "deterministic per seed" `Quick
            test_chaos_deterministic_per_seed;
          Alcotest.test_case "cached == uncached under disk faults" `Quick
            test_cached_uncached_under_disk_faults;
          Alcotest.test_case "no poisoned entry served" `Quick
            test_no_poisoned_entry_served ] );
      ( "degradation",
        [ Alcotest.test_case "disk tier degrades to memory-only" `Quick
            test_disk_tier_degrades_to_memory_only;
          Alcotest.test_case "transient faults retried once" `Quick
            test_transient_faults_retried ] );
      ( "daemon",
        [ Alcotest.test_case "daemon serves correctly under faults" `Quick
            test_daemon_under_faults ] );
      ( "deadline",
        [ Alcotest.test_case "adversarial decompile bounded" `Quick
            test_adversarial_decompile_bounded;
          Alcotest.test_case "mid-fixpoint timeout bounded" `Quick
            test_mid_fixpoint_timeout_bounded ] );
      ( "disk-housekeeping",
        [ Alcotest.test_case "size bound evicts oldest" `Quick
            test_disk_bound_evicts_oldest;
          Alcotest.test_case "unbounded tier never evicts" `Quick
            test_unbounded_tier_never_evicts;
          Alcotest.test_case "stale tmp sweep" `Quick test_stale_tmp_sweep ] )
    ]
