(* Corpus tests: every template compiles, analyzes exactly per its
   ground truth, and — the strongest check — the ground truth itself is
   validated dynamically: templates marked exploitable are actually
   destroyed by Kill, templates marked safe survive a full attack
   sweep. The generator's determinism and uniqueness are also covered. *)

module U = Ethainter_word.Uint256
module T = Ethainter_chain.Testnet
module P = Ethainter_core.Pipeline
module V = Ethainter_core.Vulns
module Pat = Ethainter_corpus.Patterns
module G = Ethainter_corpus.Generator
module K = Ethainter_kill.Kill

let compile_template (t : Pat.template) =
  Ethainter_minisol.Codegen.compile_source_runtime t.Pat.t_source

(* static verdicts match ground truth exactly: flagged = vulnerable ∪
   expected-FPs, for every kind and every template *)
let test_static_matrix () =
  List.iter
    (fun (t : Pat.template) ->
      let r = P.run (P.request (P.Runtime (compile_template t))) in
      List.iter
        (fun k ->
          let expected =
            List.mem k t.Pat.t_truth.Pat.vulnerable
            || List.mem k t.Pat.t_truth.Pat.fp_for
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s" t.Pat.t_name (V.kind_id k))
            expected (P.flags r k))
        V.all_kinds)
    Pat.all_templates

(* dynamic ground-truth validation via Ethainter-Kill *)
let test_dynamic_exploitability () =
  List.iter
    (fun (t : Pat.template) ->
      let truth = t.Pat.t_truth in
      (* only meaningful where a selfdestruct claim exists either way *)
      let net = T.create () in
      let deployer = T.account_of_seed "deployer" in
      let attacker = T.account_of_seed "attacker" in
      T.fund_account net deployer (U.of_string "1000000000000000000");
      T.fund_account net attacker (U.of_string "1000000000000000000");
      let r =
        T.deploy net ~from:deployer
          (Ethainter_minisol.Codegen.compile_deploy
             (Ethainter_minisol.Parser.parse t.Pat.t_source))
      in
      match r.T.created with
      | None -> Alcotest.fail (t.Pat.t_name ^ ": deployment failed")
      | Some victim ->
          let reports =
            (P.run
               (P.request
                  (P.Runtime (Ethainter_evm.State.code (T.state net) victim))))
              .P.reports
          in
          (* force an attack attempt regardless of report kinds *)
          let forced =
            V.{ r_kind = AccessibleSelfdestruct; r_pc = 0; r_block = 0;
                r_orphan = false; r_composite = false; r_note = "" }
          in
          let a =
            K.attack net ~attacker ~victim
              (if reports = [] then [ forced ] else reports)
          in
          if truth.Pat.exploitable_selfdestruct then
            Alcotest.(check bool)
              (t.Pat.t_name ^ ": marked exploitable, Kill must destroy it")
              true
              (a.K.a_outcome = K.Destroyed)
          else
            Alcotest.(check bool)
              (t.Pat.t_name ^ ": marked safe, must survive the sweep")
              true
              (T.is_alive net victim))
    Pat.all_templates

let test_generator_deterministic () =
  let c1 = G.mainnet ~seed:7 ~size:60 () in
  let c2 = G.mainnet ~seed:7 ~size:60 () in
  Alcotest.(check int) "same size" (List.length c1) (List.length c2);
  List.iter2
    (fun (a : G.instance) (b : G.instance) ->
      Alcotest.(check string) "same name" a.G.i_name b.G.i_name;
      Alcotest.(check string) "same bytecode"
        (Ethainter_word.Hex.encode a.G.i_runtime)
        (Ethainter_word.Hex.encode b.G.i_runtime))
    c1 c2;
  let c3 = G.mainnet ~seed:8 ~size:60 () in
  Alcotest.(check bool) "different seed differs" true
    (List.exists2
       (fun (a : G.instance) (b : G.instance) ->
         a.G.i_runtime <> b.G.i_runtime)
       c1 c3)

let test_generator_unique_bytecodes () =
  let corpus = G.mainnet ~seed:3 ~size:120 () in
  let tbl = Hashtbl.create 128 in
  let dups = ref 0 in
  List.iter
    (fun (i : G.instance) ->
      if Hashtbl.mem tbl i.G.i_runtime then incr dups
      else Hashtbl.replace tbl i.G.i_runtime ())
    corpus;
  (* the filler injection makes duplicates rare; tolerate a handful *)
  Alcotest.(check bool)
    (Printf.sprintf "few duplicate bytecodes (%d)" !dups)
    true
    (!dups * 10 < List.length corpus)

let test_generated_instances_compile_and_run () =
  let corpus = G.mainnet ~seed:11 ~size:50 () in
  List.iter
    (fun (i : G.instance) ->
      Alcotest.(check bool)
        (i.G.i_name ^ " has bytecode")
        true
        (String.length i.G.i_runtime > 0);
      (* every instance still matches its template's ground truth on
         the vulnerable set (fillers must not add vulnerabilities) *)
      let r = P.run (P.request (P.Runtime i.G.i_runtime)) in
      List.iter
        (fun k ->
          let expected =
            G.truly_vulnerable i k || G.expected_fp i k
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s / %s" i.G.i_name (V.kind_id k))
            expected (P.flags r k))
        V.all_kinds)
    corpus

let test_balances_biased () =
  (* the paper's observation: value concentrates in safe contracts *)
  let corpus = G.mainnet ~seed:5 ~size:400 () in
  let sum f =
    List.fold_left
      (fun acc (i : G.instance) ->
        if f i then U.add acc i.G.i_eth_held else acc)
      U.zero corpus
  in
  let safe_eth =
    sum (fun i -> i.G.i_template.Pat.t_truth.Pat.vulnerable = [])
  in
  let vuln_eth =
    sum (fun i -> i.G.i_template.Pat.t_truth.Pat.vulnerable <> [])
  in
  Alcotest.(check bool) "safe holds more" true (U.gt safe_eth vuln_eth)

let test_ropsten_mix_denser () =
  let ropsten = G.ropsten ~seed:1 ~size:200 () in
  let mainnet = G.mainnet ~seed:1 ~size:200 () in
  let vuln_count c =
    List.length
      (List.filter
         (fun (i : G.instance) ->
           i.G.i_template.Pat.t_truth.Pat.vulnerable <> [])
         c)
  in
  Alcotest.(check bool) "testnet denser in vulnerable deployments" true
    (vuln_count ropsten > vuln_count mainnet)

let test_source_info () =
  let corpus = G.mainnet ~seed:2 ~size:80 () in
  let with_source =
    List.filter (fun (i : G.instance) -> i.G.i_has_source) corpus
  in
  (* ~80% have verified source *)
  Alcotest.(check bool) "majority verified" true
    (List.length with_source * 10 > List.length corpus * 6);
  List.iter
    (fun (i : G.instance) ->
      let si = G.source_info i in
      match si.Ethainter_baselines.Securify2.src with
      | Some s when i.G.i_has_source ->
          Alcotest.(check bool) "source matches instance" true
            (s = i.G.i_source)
      | None when not i.G.i_has_source -> ()
      | _ -> Alcotest.fail "source_info inconsistent")
    corpus

let () =
  Alcotest.run "corpus"
    [ ( "templates",
        [ Alcotest.test_case "static matrix" `Quick test_static_matrix;
          Alcotest.test_case "dynamic exploitability" `Slow
            test_dynamic_exploitability ] );
      ( "generator",
        [ Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "unique bytecodes" `Quick
            test_generator_unique_bytecodes;
          Alcotest.test_case "instances analyze per truth" `Quick
            test_generated_instances_compile_and_run;
          Alcotest.test_case "balance bias" `Quick test_balances_biased;
          Alcotest.test_case "ropsten density" `Quick test_ropsten_mix_denser;
          Alcotest.test_case "source info" `Quick test_source_info ] ) ]
