(* Datalog engine tests: textbook programs (transitive closure,
   same-generation), stratified negation, errors, and a differential
   property against a reference reachability computation. *)

module D = Ethainter_datalog.Datalog

let sym = D.sym
let v = D.v

let edge_facts edges =
  ("edge", List.map (fun (a, b) -> [| D.Sym a; D.Sym b |]) edges)

let tc_program () =
  let p = D.create () in
  D.declare p "edge" 2;
  D.declare p "path" 2;
  D.add_rule p ("path", [ v "x"; v "y" ]) [ D.Pos ("edge", [ v "x"; v "y" ]) ];
  D.add_rule p
    ("path", [ v "x"; v "z" ])
    [ D.Pos ("path", [ v "x"; v "y" ]); D.Pos ("edge", [ v "y"; v "z" ]) ];
  p

let test_transitive_closure () =
  let p = tc_program () in
  let db = D.solve p [ edge_facts [ ("a", "b"); ("b", "c"); ("c", "d") ] ] in
  Alcotest.(check int) "path count" 6 (D.size db "path");
  Alcotest.(check bool) "a->d" true
    (D.mem db "path" [| D.Sym "a"; D.Sym "d" |]);
  Alcotest.(check bool) "no d->a" false
    (D.mem db "path" [| D.Sym "d"; D.Sym "a" |])

let test_cycle () =
  let p = tc_program () in
  let db = D.solve p [ edge_facts [ ("a", "b"); ("b", "a") ] ] in
  (* terminates on cycles; all 4 pairs derivable *)
  Alcotest.(check int) "cycle closure" 4 (D.size db "path")

let test_same_generation () =
  let p = D.create () in
  D.declare p "parent" 2;
  D.declare p "sg" 2;
  (* siblings *)
  D.add_rule p
    ("sg", [ v "x"; v "y" ])
    [ D.Pos ("parent", [ v "p"; v "x" ]); D.Pos ("parent", [ v "p"; v "y" ]) ];
  (* same generation via parents *)
  D.add_rule p
    ("sg", [ v "x"; v "y" ])
    [ D.Pos ("parent", [ v "px"; v "x" ]);
      D.Pos ("sg", [ v "px"; v "py" ]);
      D.Pos ("parent", [ v "py"; v "y" ]) ];
  let facts =
    [ ( "parent",
        [ [| D.Sym "root"; D.Sym "a" |]; [| D.Sym "root"; D.Sym "b" |];
          [| D.Sym "a"; D.Sym "a1" |]; [| D.Sym "b"; D.Sym "b1" |] ] ) ]
  in
  let db = D.solve p facts in
  Alcotest.(check bool) "cousins same generation" true
    (D.mem db "sg" [| D.Sym "a1"; D.Sym "b1" |]);
  Alcotest.(check bool) "different generations" false
    (D.mem db "sg" [| D.Sym "a"; D.Sym "b1" |])

let test_negation_stratified () =
  (* unreachable(x) :- node(x), !reach(x) *)
  let p = D.create () in
  D.declare p "edge" 2;
  D.declare p "node" 1;
  D.declare p "reach" 1;
  D.declare p "unreachable" 1;
  D.add_rule p ("reach", [ sym "start" ]) [];
  D.add_rule p
    ("reach", [ v "y" ])
    [ D.Pos ("reach", [ v "x" ]); D.Pos ("edge", [ v "x"; v "y" ]) ];
  D.add_rule p
    ("unreachable", [ v "x" ])
    [ D.Pos ("node", [ v "x" ]); D.Neg ("reach", [ v "x" ]) ];
  let db =
    D.solve p
      [ edge_facts [ ("start", "m"); ("m", "n") ];
        ("node",
         [ [| D.Sym "start" |]; [| D.Sym "m" |]; [| D.Sym "n" |];
           [| D.Sym "island" |] ]) ]
  in
  Alcotest.(check int) "one unreachable" 1 (D.size db "unreachable");
  Alcotest.(check bool) "island" true
    (D.mem db "unreachable" [| D.Sym "island" |])

let test_unstratifiable_rejected () =
  (* p(x) :- q(x), !p(x) — negation in a cycle *)
  let p = D.create () in
  D.declare p "q" 1;
  D.declare p "p" 1;
  D.add_rule p ("p", [ v "x" ])
    [ D.Pos ("q", [ v "x" ]); D.Neg ("p", [ v "x" ]) ];
  match D.solve p [ ("q", [ [| D.Sym "a" |] ]) ] with
  | exception D.Datalog_error _ -> ()
  | _ -> Alcotest.fail "unstratifiable program must be rejected"

let test_arity_checks () =
  let p = D.create () in
  D.declare p "r" 2;
  (match D.add_rule p ("r", [ v "x" ]) [] with
  | exception D.Datalog_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch in head");
  match D.solve p [ ("r", [ [| D.Sym "a" |] ]) ] with
  | exception D.Datalog_error _ -> ()
  | _ -> Alcotest.fail "arity mismatch in facts"

let test_undeclared_rejected () =
  let p = D.create () in
  D.declare p "r" 1;
  match D.add_rule p ("r", [ v "x" ]) [ D.Pos ("nope", [ v "x" ]) ] with
  | exception D.Datalog_error _ -> ()
  | _ -> Alcotest.fail "undeclared relation must be rejected"

let test_filter_and_bind () =
  (* double(x, y) :- n(x), y := 2x, y < 10 *)
  let p = D.create () in
  D.declare p "n" 1;
  D.declare p "double" 2;
  D.add_rule p
    ("double", [ v "x"; v "y" ])
    [ D.Pos ("n", [ v "x" ]);
      D.Bind
        ( "y", [ "x" ],
          function [ D.Int i ] -> Some (D.Int (2 * i)) | _ -> None );
      D.Filter ([ "y" ], function [ D.Int y ] -> y < 10 | _ -> false) ];
  let db =
    D.solve p [ ("n", [ [| D.Int 2 |]; [| D.Int 3 |]; [| D.Int 7 |] ]) ]
  in
  Alcotest.(check int) "two pass the filter" 2 (D.size db "double");
  Alcotest.(check bool) "2 -> 4" true (D.mem db "double" [| D.Int 2; D.Int 4 |]);
  Alcotest.(check bool) "7 filtered out" false
    (D.mem db "double" [| D.Int 7; D.Int 14 |])

let test_constants_in_rules () =
  let p = tc_program () in
  D.declare p "from_a" 1;
  D.add_rule p ("from_a", [ v "y" ]) [ D.Pos ("path", [ sym "a"; v "y" ]) ];
  let db = D.solve p [ edge_facts [ ("a", "b"); ("b", "c"); ("z", "w") ] ] in
  Alcotest.(check int) "only a's targets" 2 (D.size db "from_a")

(* ---- planner ---- *)

(* Adornments are computed statically, per rule, from which slots
   earlier literals bind. *)
let test_adornment_join () =
  let p = tc_program () in
  match D.adornments p with
  | [ ("path", [ edge_only ]); ("path", [ path_ad; edge_ad ]) ] ->
      (* path(x,y) :- edge(x,y): nothing bound before the only literal *)
      Alcotest.(check (list int)) "base rule: edge free" [] edge_only.D.ad_bound;
      (* path(x,z) :- path(x,y), edge(y,z): the recursive literal is
         reached with nothing bound; edge is probed with y (pos 0)
         ground *)
      Alcotest.(check string) "first literal" "path" path_ad.D.ad_rel;
      Alcotest.(check (list int)) "path free" [] path_ad.D.ad_bound;
      Alcotest.(check string) "second literal" "edge" edge_ad.D.ad_rel;
      Alcotest.(check (list int)) "edge bound on 0" [ 0 ] edge_ad.D.ad_bound
  | _ -> Alcotest.fail "unexpected rule shapes for TC program"

let test_adornment_constant () =
  let p = tc_program () in
  D.declare p "from_a" 1;
  D.add_rule p ("from_a", [ v "y" ]) [ D.Pos ("path", [ sym "a"; v "y" ]) ];
  match D.adornments p with
  | [ _; _; ("from_a", [ ad ]) ] ->
      (* the constant position is part of the index key *)
      Alcotest.(check (list int)) "constant adorned" [ 0 ] ad.D.ad_bound
  | _ -> Alcotest.fail "unexpected adornments"

let test_adornment_repeated_var () =
  let p = D.create () in
  D.declare p "e" 2;
  D.declare p "f" 1;
  D.declare p "loops" 1;
  D.declare p "loops2" 1;
  (* loops(x) :- e(x,x): the repeat is a within-tuple check, not an
     index key — nothing is ground before the literal *)
  D.add_rule p ("loops", [ v "x" ]) [ D.Pos ("e", [ v "x"; v "x" ]) ];
  (* loops2(x) :- f(x), e(x,x): x is ground by f, so both positions
     of e are adorned *)
  D.add_rule p ("loops2", [ v "x" ])
    [ D.Pos ("f", [ v "x" ]); D.Pos ("e", [ v "x"; v "x" ]) ];
  (match D.adornments p with
  | [ ("loops", [ ad1 ]); ("loops2", [ _; ad2 ]) ] ->
      Alcotest.(check (list int)) "repeat alone: free" [] ad1.D.ad_bound;
      Alcotest.(check (list int)) "repeat after bind: both" [ 0; 1 ]
        ad2.D.ad_bound
  | _ -> Alcotest.fail "unexpected adornments");
  (* and the within-tuple check is actually enforced *)
  let db =
    D.solve p
      [ ("e", [ [| D.Sym "a"; D.Sym "a" |]; [| D.Sym "a"; D.Sym "b" |] ]);
        ("f", [ [| D.Sym "a" |]; [| D.Sym "b" |] ]) ]
  in
  Alcotest.(check int) "one self-loop" 1 (D.size db "loops");
  Alcotest.(check bool) "a loops" true (D.mem db "loops" [| D.Sym "a" |]);
  Alcotest.(check int) "loops2 = loops ∩ f" 1 (D.size db "loops2")

let test_adornment_bind_bound () =
  let p = D.create () in
  D.declare p "n" 1;
  D.declare p "m" 2;
  D.declare p "r" 2;
  (* r(x,z) :- n(x), y := x+1, m(y,z): the Bind-bound slot y adorns
     m's first position *)
  D.add_rule p
    ("r", [ v "x"; v "z" ])
    [ D.Pos ("n", [ v "x" ]);
      D.Bind
        ( "y", [ "x" ],
          function [ D.Int i ] -> Some (D.Int (i + 1)) | _ -> None );
      D.Pos ("m", [ v "y"; v "z" ]) ];
  (match D.adornments p with
  | [ ("r", [ n_ad; m_ad ]) ] ->
      Alcotest.(check (list int)) "n free" [] n_ad.D.ad_bound;
      Alcotest.(check (list int)) "m bound on bind output" [ 0 ]
        m_ad.D.ad_bound
  | _ -> Alcotest.fail "unexpected adornments");
  let db =
    D.solve p
      [ ("n", [ [| D.Int 1 |]; [| D.Int 5 |] ]);
        ("m", [ [| D.Int 2; D.Sym "two" |]; [| D.Int 7; D.Sym "seven" |] ]) ]
  in
  Alcotest.(check bool) "1 -> two" true
    (D.mem db "r" [| D.Int 1; D.Sym "two" |]);
  Alcotest.(check int) "only the +1 match" 1 (D.size db "r")

(* The tier-1 planner smoke test: plans are built once per rule per
   program — NOT once per probe, and not even once per solve when the
   program is re-solved — so a regression to per-call planning fails
   here. *)
let test_plan_built_once () =
  let p = tc_program () in
  let edges n =
    ("edge", List.init n (fun i ->
         [| D.Sym ("n" ^ string_of_int i);
            D.Sym ("n" ^ string_of_int ((i + 1) mod n)) |]))
  in
  let before = D.stats () in
  ignore (D.solve p [ edges 30 ]);
  let after_first = D.stats () in
  Alcotest.(check int) "one plan per rule"
    2
    (after_first.D.plans_built - before.D.plans_built);
  (* a second solve over different (larger) facts reuses the cached
     plan: rule count, not probe count, drives compilation *)
  ignore (D.solve p [ edges 120 ]);
  let after_second = D.stats () in
  Alcotest.(check int) "no recompilation on re-solve" 0
    (after_second.D.plans_built - after_first.D.plans_built);
  Alcotest.(check bool) "plan cache hit recorded" true
    (after_second.D.plan_reuses > after_first.D.plan_reuses);
  (* adding a rule invalidates the cache — exactly the whole program
     is replanned once *)
  D.declare p "from_a" 1;
  D.add_rule p ("from_a", [ v "y" ]) [ D.Pos ("path", [ sym "a"; v "y" ]) ];
  ignore (D.solve p [ edges 30 ]);
  let after_third = D.stats () in
  Alcotest.(check int) "replan after program change" 3
    (after_third.D.plans_built - after_second.D.plans_built)

(* Delta indexes: forcing every delta through the index path (and
   none) changes nothing observable. *)
let test_delta_index_equivalence () =
  let p = tc_program () in
  let r = ref 77 in
  let rand n =
    r := ((!r * 1103515245) + 12345) land 0x3FFFFFFF;
    !r mod n
  in
  let edges =
    List.init 400 (fun _ ->
        [| D.Sym ("n" ^ string_of_int (rand 40));
           D.Sym ("n" ^ string_of_int (rand 40)) |])
  in
  let solve_with threshold =
    let saved = !D.delta_index_threshold in
    D.delta_index_threshold := threshold;
    Fun.protect
      ~finally:(fun () -> D.delta_index_threshold := saved)
      (fun () -> D.solve p [ ("edge", edges) ])
  in
  let always = solve_with 0 in
  let never = solve_with max_int in
  let naive = D.solve ~indexed:false p [ ("edge", edges) ] in
  let paths db = List.sort compare (D.relation db "path") in
  Alcotest.(check bool) "delta-indexed == delta-scanned" true
    (paths always = paths never);
  Alcotest.(check bool) "delta-indexed == naive" true
    (paths always = paths naive)

(* ---- shared intern table ---- *)

module Intern = Ethainter_runtime.Intern

let test_intern_roundtrip_domains () =
  let names = List.init 64 (fun i -> Printf.sprintf "sym-%d" (i mod 48)) in
  let ids_of () = List.map (fun s -> (s, Intern.id s)) names in
  let domains = List.init 4 (fun _ -> Domain.spawn ids_of) in
  let here = ids_of () in
  let remote = List.map Domain.join domains in
  (* same string -> same id in every domain *)
  List.iter
    (fun ids -> Alcotest.(check bool) "ids agree across domains" true
        (ids = here))
    remote;
  (* roundtrip, including from a domain that never interned *)
  List.iter
    (fun (s, i) ->
      Alcotest.(check string) "to_string roundtrip" s (Intern.to_string i))
    here;
  let back =
    Domain.join
      (Domain.spawn (fun () ->
           List.map (fun (_, i) -> Intern.to_string i) here))
  in
  Alcotest.(check (list string)) "fresh-domain roundtrip"
    (List.map fst here) back;
  (* distinct strings get distinct ids *)
  let distinct = List.sort_uniq compare (List.map snd here) in
  Alcotest.(check int) "distinct ids" 48 (List.length distinct);
  match Intern.to_string max_int with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown id must be rejected"

(* Concurrent solves in separate domains share the intern table and
   agree tuple-for-tuple. *)
let test_solve_across_domains () =
  let facts =
    [ edge_facts
        (List.init 50 (fun i ->
             ( "d" ^ string_of_int (i mod 13),
               "d" ^ string_of_int ((i * 7) mod 13) ))) ]
  in
  let run () =
    let p = tc_program () in
    List.sort compare (D.relation (D.solve p facts) "path")
  in
  let expected = run () in
  let domains = List.init 4 (fun _ -> Domain.spawn run) in
  List.iter
    (fun d ->
      Alcotest.(check bool) "domain solve agrees" true
        (Domain.join d = expected))
    domains

(* differential property: Datalog TC = reference DFS reachability on
   random graphs *)
let prop_tc_matches_dfs =
  let gen_edges =
    QCheck.Gen.(
      list_size (int_bound 30)
        (pair (int_bound 8) (int_bound 8)))
  in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"TC matches DFS reachability" ~count:60
       (QCheck.make gen_edges ~print:(fun es ->
            String.concat ";"
              (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
       (fun edges ->
         let name i = "n" ^ string_of_int i in
         let p = tc_program () in
         let db =
           D.solve p
             [ edge_facts (List.map (fun (a, b) -> (name a, name b)) edges) ]
         in
         (* reference: DFS from each node *)
         let adj = Hashtbl.create 16 in
         List.iter
           (fun (a, b) ->
             Hashtbl.replace adj a
               (b :: (try Hashtbl.find adj a with Not_found -> [])))
           edges;
         let reachable_from a =
           let seen = Hashtbl.create 8 in
           let rec dfs x =
             List.iter
               (fun y ->
                 if not (Hashtbl.mem seen y) then begin
                   Hashtbl.replace seen y ();
                   dfs y
                 end)
               (try Hashtbl.find adj x with Not_found -> [])
           in
           dfs a;
           seen
         in
         let nodes =
           List.sort_uniq compare
             (List.concat_map (fun (a, b) -> [ a; b ]) edges)
         in
         List.for_all
           (fun a ->
             let ref_set = reachable_from a in
             List.for_all
               (fun b ->
                 D.mem db "path" [| D.Sym (name a); D.Sym (name b) |]
                 = Hashtbl.mem ref_set b)
               nodes)
           nodes))

let () =
  Alcotest.run "datalog"
    [ ( "engine",
        [ Alcotest.test_case "transitive closure" `Quick
            test_transitive_closure;
          Alcotest.test_case "cycles terminate" `Quick test_cycle;
          Alcotest.test_case "same generation" `Quick test_same_generation;
          Alcotest.test_case "stratified negation" `Quick
            test_negation_stratified;
          Alcotest.test_case "unstratifiable rejected" `Quick
            test_unstratifiable_rejected;
          Alcotest.test_case "arity checks" `Quick test_arity_checks;
          Alcotest.test_case "undeclared rejected" `Quick
            test_undeclared_rejected;
          Alcotest.test_case "filter and bind" `Quick test_filter_and_bind;
          Alcotest.test_case "constants in rules" `Quick
            test_constants_in_rules ] );
      ( "planner",
        [ Alcotest.test_case "adornment: join" `Quick test_adornment_join;
          Alcotest.test_case "adornment: constant" `Quick
            test_adornment_constant;
          Alcotest.test_case "adornment: repeated variable" `Quick
            test_adornment_repeated_var;
          Alcotest.test_case "adornment: bind-bound slot" `Quick
            test_adornment_bind_bound;
          Alcotest.test_case "plan built once per rule" `Quick
            test_plan_built_once;
          Alcotest.test_case "delta-index equivalence" `Quick
            test_delta_index_equivalence ] );
      ( "intern",
        [ Alcotest.test_case "roundtrip across domains" `Quick
            test_intern_roundtrip_domains;
          Alcotest.test_case "solve across domains" `Quick
            test_solve_across_domains ] );
      ("properties", [ prop_tc_matches_dfs ]) ]
