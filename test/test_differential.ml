(* Differential testing of the Datalog engine's evaluators against
   each other.

   A seeded generator produces random stratified programs — random
   arities, joins through shared variables, recursion (including
   self-recursion within a stratum), stratified negation, filters and
   binds over a closed constant universe — and we assert three-way
   agreement, relation by relation: the compile-once planner
   ([~strategy:Planned], the default), the PR 1 per-probe indexed
   evaluator ([~indexed:true]) and the naive full-scan reference
   ([~indexed:false]) derive exactly the same tuples. One batch
   re-runs with [delta_index_threshold] forced to 1 so every
   semi-naive delta takes the delta-index path. The constant universe
   is closed under every Bind function, so all generated programs
   terminate. *)

module D = Ethainter_datalog.Datalog

(* deterministic xorshift PRNG: reproducible across runs/OCaml versions *)
type rng = { mutable s : int64 }

let rng_of_seed (seed : int) = { s = Int64.of_int ((seed * 2654435761) + 88172645) }

let next (r : rng) : int =
  let x = r.s in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.s <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFFFFFFFFFL)

let rand r n = next r mod n
let pick r l = List.nth l (rand r (List.length l))
let chance r pct = rand r 100 < pct

(* closed constant universe: ints 0..7, symbols a..e *)
let consts =
  List.init 8 (fun i -> D.Int i)
  @ List.map (fun s -> D.Sym s) [ "a"; "b"; "c"; "d"; "e" ]

let var_pool = [ "x"; "y"; "z"; "w"; "u" ]

type relinfo = { rname : string; arity : int; stratum : int; is_edb : bool }

(* Successor mod 8 on ints, identity on symbols: keeps Bind inside the
   universe so recursive programs reach a fixpoint. *)
let bind_fn = function
  | [ D.Int i ] -> Some (D.Int ((i + 1) mod 8))
  | [ c ] -> Some c
  | _ -> None

let filter_fn = function
  | [ D.Int i ] -> i land 1 = 0
  | [ D.Sym s ] -> s <= "c"
  | _ -> true

(* One random program + its EDB facts. *)
let gen_program (seed : int) : D.program * (string * D.tuple list) list =
  let r = rng_of_seed seed in
  let n_edb = 1 + rand r 3 and n_idb = 2 + rand r 4 in
  let edb =
    List.init n_edb (fun i ->
        { rname = Printf.sprintf "e%d" i; arity = 1 + rand r 3;
          stratum = 0; is_edb = true })
  in
  let idb =
    List.init n_idb (fun i ->
        { rname = Printf.sprintf "r%d" i; arity = 1 + rand r 3;
          stratum = rand r 3; is_edb = false })
  in
  let p = D.create () in
  List.iter (fun ri -> D.declare p ri.rname ri.arity) (edb @ idb);
  (* rules *)
  List.iter
    (fun head_rel ->
      let n_rules = 1 + rand r 3 in
      for _ = 1 to n_rules do
        (* positive body: EDB + IDB at same-or-lower stratum (recursion) *)
        let pos_candidates =
          edb @ List.filter (fun ri -> ri.stratum <= head_rel.stratum) idb
        in
        let n_pos = 1 + rand r 2 in
        let pos_lits =
          List.init n_pos (fun _ ->
              let ri = pick r pos_candidates in
              let terms =
                List.init ri.arity (fun _ ->
                    if chance r 55 then D.Var (pick r var_pool)
                    else D.Const (pick r consts))
              in
              (ri, terms))
        in
        let bound =
          List.sort_uniq compare
            (List.concat_map
               (fun (_, terms) ->
                 List.filter_map
                   (function D.Var x -> Some x | D.Const _ -> None)
                   terms)
               pos_lits)
        in
        let body = List.map (fun (ri, ts) -> D.Pos (ri.rname, ts)) pos_lits in
        (* optional bind of a fresh variable from a bound one *)
        let bound, body =
          if bound <> [] && chance r 30 then
            let b = "b" in
            (b :: bound, body @ [ D.Bind (b, [ pick r bound ], bind_fn) ])
          else (bound, body)
        in
        (* optional filter over a bound variable *)
        let body =
          if bound <> [] && chance r 30 then
            body @ [ D.Filter ([ pick r bound ], filter_fn) ]
          else body
        in
        (* optional stratified negation: strictly lower stratum (or
           EDB), all terms bound *)
        let neg_candidates =
          edb @ List.filter (fun ri -> ri.stratum < head_rel.stratum) idb
        in
        let body =
          if chance r 40 && neg_candidates <> [] then begin
            let ri = pick r neg_candidates in
            let terms =
              List.init ri.arity (fun _ ->
                  if bound <> [] && chance r 70 then D.Var (pick r bound)
                  else D.Const (pick r consts))
            in
            body @ [ D.Neg (ri.rname, terms) ]
          end
          else body
        in
        let head_terms =
          List.init head_rel.arity (fun _ ->
              if bound <> [] && chance r 60 then D.Var (pick r bound)
              else D.Const (pick r consts))
        in
        D.add_rule p (head_rel.rname, head_terms) body
      done)
    idb;
  (* EDB facts *)
  let facts =
    List.map
      (fun ri ->
        let n = rand r 7 in
        ( ri.rname,
          List.init n (fun _ ->
              Array.init ri.arity (fun _ -> pick r consts)) ))
      edb
  in
  (p, facts)

let show_tuple (t : D.tuple) =
  "("
  ^ String.concat "," (Array.to_list (Array.map D.const_to_string t))
  ^ ")"

(* planned, indexed and naive evaluation agree, relation by relation *)
let check_equivalent seed =
  let p, facts = gen_program seed in
  let db_naive = D.solve ~indexed:false p facts in
  let db_indexed = D.solve ~indexed:true p facts in
  let db_planned = D.solve ~strategy:D.Planned p facts in
  let check other_name db_other =
    Hashtbl.iter
      (fun name _arity ->
        let tn = List.sort compare (D.relation db_naive name) in
        let to_ = List.sort compare (D.relation db_other name) in
        if tn <> to_ then
          Alcotest.failf
            "seed %d, relation %s: naive has %d tuples, %s %d\n\
             naive-only: %s\n%s-only: %s"
            seed name (List.length tn) other_name (List.length to_)
            (String.concat " "
               (List.map show_tuple
                  (List.filter (fun t -> not (List.mem t to_)) tn)))
            other_name
            (String.concat " "
               (List.map show_tuple
                  (List.filter (fun t -> not (List.mem t tn)) to_))))
      p.D.relations
  in
  check "indexed" db_indexed;
  check "planned" db_planned

let test_differential_batch lo hi () =
  for seed = lo to hi - 1 do
    check_equivalent seed
  done

(* same seeds with every delta forced through the delta-index path *)
let test_differential_delta_index lo hi () =
  let saved = !D.delta_index_threshold in
  D.delta_index_threshold := 1;
  Fun.protect
    ~finally:(fun () -> D.delta_index_threshold := saved)
    (fun () ->
      for seed = lo to hi - 1 do
        check_equivalent seed
      done)

(* Worst case for a scan, best case for an index: a long join chain
   over a larger graph. Also asserts agreement, as a focused complement
   to the random sweep. *)
let test_chain_join () =
  let p = D.create () in
  D.declare p "edge" 2;
  D.declare p "path" 2;
  D.add_rule p
    ("path", [ D.v "x"; D.v "y" ])
    [ D.Pos ("edge", [ D.v "x"; D.v "y" ]) ];
  D.add_rule p
    ("path", [ D.v "x"; D.v "z" ])
    [ D.Pos ("path", [ D.v "x"; D.v "y" ]); D.Pos ("edge", [ D.v "y"; D.v "z" ]) ];
  let r = rng_of_seed 7 in
  let name i = D.Sym (Printf.sprintf "n%d" i) in
  let edges =
    List.init 300 (fun _ -> [| name (rand r 60); name (rand r 60) |])
  in
  let dbn = D.solve ~indexed:false p [ ("edge", edges) ] in
  let dbi = D.solve ~indexed:true p [ ("edge", edges) ] in
  let dbp = D.solve ~strategy:D.Planned p [ ("edge", edges) ] in
  Alcotest.(check int) "path sizes agree (indexed)" (D.size dbn "path")
    (D.size dbi "path");
  Alcotest.(check int) "path sizes agree (planned)" (D.size dbn "path")
    (D.size dbp "path");
  let sorted db = List.sort compare (D.relation db "path") in
  Alcotest.(check bool) "tuplewise agreement (indexed)" true
    (sorted dbn = sorted dbi);
  Alcotest.(check bool) "tuplewise agreement (planned)" true
    (sorted dbn = sorted dbp)

let () =
  Alcotest.run "differential"
    [ ( "planned-vs-indexed-vs-naive",
        [ Alcotest.test_case "random programs 0-49" `Quick
            (test_differential_batch 0 50);
          Alcotest.test_case "random programs 50-99" `Quick
            (test_differential_batch 50 100);
          Alcotest.test_case "random programs 100-149" `Quick
            (test_differential_batch 100 150);
          Alcotest.test_case "random programs 150-199" `Quick
            (test_differential_batch 150 200);
          Alcotest.test_case "delta-indexed 0-49" `Quick
            (test_differential_delta_index 0 50);
          Alcotest.test_case "chain join" `Quick test_chain_join ] ) ]
