(* EVM interpreter tests: opcode semantics, control flow, memory,
   storage, calls, reverts, tracing, and a differential property
   checking compiled arithmetic against Uint256. *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode
module B = Ethainter_evm.Bytecode
module State = Ethainter_evm.State
module I = Ethainter_evm.Interp

let caller = U.of_int 0xCA11E4
let contract = U.of_int 0xC0DE

(* Run [asm] as the code of [contract] with the given calldata; return
   the outcome. *)
let run ?(calldata = "") ?(value = U.zero) ?(state = State.create ()) asm =
  State.set_code state contract (B.assemble asm);
  State.set_balance state caller (U.of_string "1000000000000000000");
  I.call state ~caller ~target:contract ~value ~calldata

(* A program returning one word. *)
let returning_word body =
  body
  @ [ B.Push U.zero; B.Op Op.MSTORE; B.Push (U.of_int 32); B.Push U.zero;
      B.Op Op.RETURN ]

let word_result ?calldata ?state asm =
  match run ?calldata ?state (returning_word asm) with
  | I.Returned s, _ when String.length s = 32 -> U.of_bytes s
  | I.Returned _, _ -> Alcotest.fail "short return"
  | I.Reverted _, _ -> Alcotest.fail "reverted"
  | I.Failed m, _ -> Alcotest.fail ("failed: " ^ m)

let check_u msg a b = Alcotest.(check string) msg (U.to_hex a) (U.to_hex b)

let test_arith () =
  (* EVM ops pop left operand from the top: push right first *)
  check_u "add"
    (word_result [ B.Push (U.of_int 10); B.Push (U.of_int 20); B.Op Op.ADD ])
    (U.of_int 30)

let test_arith_more () =
  check_u "sub 20-10"
    (word_result [ B.Push (U.of_int 10); B.Push (U.of_int 20); B.Op Op.SUB ])
    (U.of_int 10);
  check_u "div 20/10"
    (word_result [ B.Push (U.of_int 10); B.Push (U.of_int 20); B.Op Op.DIV ])
    (U.of_int 2);
  check_u "exp 2^8"
    (word_result [ B.Push (U.of_int 8); B.Push (U.of_int 2); B.Op Op.EXP ])
    (U.of_int 256);
  check_u "lt 1<2"
    (word_result [ B.Push (U.of_int 2); B.Push (U.of_int 1); B.Op Op.LT ])
    U.one;
  check_u "iszero 0"
    (word_result [ B.Push U.zero; B.Op Op.ISZERO ])
    U.one

let test_stack_ops () =
  check_u "dup1"
    (word_result [ B.Push (U.of_int 7); B.Op (Op.DUP 1); B.Op Op.ADD ])
    (U.of_int 14);
  check_u "swap1"
    (word_result
       [ B.Push (U.of_int 3); B.Push (U.of_int 10); B.Op (Op.SWAP 1);
         B.Op Op.SUB ])
    (* after swap: top=3(second push swapped)... stack [3;10] -> SUB = 3-10 *)
    (U.neg (U.of_int 7));
  check_u "pop"
    (word_result [ B.Push (U.of_int 1); B.Push (U.of_int 99); B.Op Op.POP ])
    U.one

let test_memory () =
  check_u "mstore/mload"
    (word_result
       [ B.Push (U.of_int 0xabcd); B.Push (U.of_int 64); B.Op Op.MSTORE;
         B.Push (U.of_int 64); B.Op Op.MLOAD ])
    (U.of_int 0xabcd);
  check_u "mstore8 writes one byte"
    (word_result
       [ B.Push (U.of_int 0xff); B.Push (U.of_int 31); B.Op Op.MSTORE8;
         B.Push U.zero; B.Op Op.MLOAD ])
    (U.of_int 0xff)

let test_storage () =
  let state = State.create () in
  let outcome, _ =
    run ~state
      [ B.Push (U.of_int 42); B.Push (U.of_int 7); B.Op Op.SSTORE;
        B.Op Op.STOP ]
  in
  (match outcome with I.Returned _ -> () | _ -> Alcotest.fail "should stop");
  check_u "sstore persisted" (State.sload state contract (U.of_int 7))
    (U.of_int 42);
  (* now read it back through SLOAD *)
  State.set_code state contract
    (B.assemble
       (returning_word [ B.Push (U.of_int 7); B.Op Op.SLOAD ]));
  let o, _ = I.call state ~caller ~target:contract ~value:U.zero ~calldata:"" in
  (match o with
  | I.Returned s -> check_u "sload" (U.of_bytes s) (U.of_int 42)
  | _ -> Alcotest.fail "sload failed")

let test_calldata () =
  let calldata = U.to_bytes (U.of_int 0xbeef) in
  check_u "calldataload 0"
    (word_result ~calldata [ B.Push U.zero; B.Op Op.CALLDATALOAD ])
    (U.of_int 0xbeef);
  check_u "calldatasize"
    (word_result ~calldata [ B.Op Op.CALLDATASIZE ])
    (U.of_int 32);
  (* loads past the end read zero *)
  check_u "calldataload OOB"
    (word_result ~calldata [ B.Push (U.of_int 100); B.Op Op.CALLDATALOAD ])
    U.zero

let test_env_ops () =
  check_u "caller" (word_result [ B.Op Op.CALLER ]) caller;
  check_u "address" (word_result [ B.Op Op.ADDRESS ]) contract;
  check_u "callvalue zero" (word_result [ B.Op Op.CALLVALUE ]) U.zero

let test_jumps () =
  (* jump over a block that would return 1; return 2 instead *)
  let asm =
    [ B.PushLabel "skip"; B.Op Op.JUMP;
      (* dead code *)
      B.Push U.one; B.Push U.zero; B.Op Op.MSTORE; B.Push (U.of_int 32);
      B.Push U.zero; B.Op Op.RETURN;
      B.Label "skip" ]
    @ returning_word [ B.Push (U.of_int 2) ]
  in
  (match run asm with
  | I.Returned s, _ -> check_u "jumped" (U.of_bytes s) (U.of_int 2)
  | _ -> Alcotest.fail "jump failed");
  (* jumping to a non-JUMPDEST fails *)
  (match run [ B.Push (U.of_int 1); B.Op Op.JUMP ] with
  | I.Failed _, _ -> ()
  | _ -> Alcotest.fail "expected failure on bad jump target")

let test_jumpi () =
  let prog cond =
    [ B.Push (U.of_int cond); B.PushLabel "yes"; B.Op Op.JUMPI ]
    @ returning_word [ B.Push (U.of_int 111) ]
    @ [ B.Label "yes" ]
    @ returning_word [ B.Push (U.of_int 222) ]
  in
  (match run (prog 1) with
  | I.Returned s, _ -> check_u "taken" (U.of_bytes s) (U.of_int 222)
  | _ -> Alcotest.fail "jumpi taken failed");
  match run (prog 0) with
  | I.Returned s, _ -> check_u "not taken" (U.of_bytes s) (U.of_int 111)
  | _ -> Alcotest.fail "jumpi fallthrough failed"

let test_sha3_opcode () =
  (* SHA3 over 0 bytes = keccak("") *)
  check_u "sha3 of empty"
    (word_result [ B.Push U.zero; B.Push U.zero; B.Op Op.SHA3 ])
    (Ethainter_crypto.Keccak.hash_word "")

let test_revert_rolls_back () =
  let state = State.create () in
  let outcome, _ =
    run ~state
      [ B.Push (U.of_int 42); B.Push U.zero; B.Op Op.SSTORE; B.Push U.zero;
        B.Push U.zero; B.Op Op.REVERT ]
  in
  (match outcome with
  | I.Reverted _ -> ()
  | _ -> Alcotest.fail "expected revert");
  check_u "storage rolled back" (State.sload state contract U.zero) U.zero

let test_selfdestruct () =
  let state = State.create () in
  State.set_balance state contract (U.of_int 500);
  let beneficiary = U.of_int 0xBEEF in
  let outcome, trace =
    run ~state [ B.Push beneficiary; B.Op Op.SELFDESTRUCT ]
  in
  (match outcome with I.Returned _ -> () | _ -> Alcotest.fail "sd failed");
  Alcotest.(check bool) "trace has selfdestruct" true
    (I.trace_selfdestructed trace contract);
  check_u "balance moved" (State.balance state beneficiary) (U.of_int 500);
  Alcotest.(check bool) "destroyed" true (State.is_destroyed state contract)

let test_call_and_value () =
  (* contract A calls contract B, transferring 100 wei; B just stops *)
  let state = State.create () in
  let b_addr = U.of_int 0xB0B in
  State.set_code state b_addr (B.assemble [ B.Op Op.STOP ]);
  let asm =
    [ B.Push U.zero; B.Push U.zero; B.Push U.zero; B.Push U.zero;
      B.Push (U.of_int 100); B.Push b_addr; B.Op Op.GAS; B.Op Op.CALL ]
  in
  State.set_balance state contract (U.of_int 1000);
  (match run ~state (returning_word asm) with
  | I.Returned s, _ -> check_u "call succeeded" (U.of_bytes s) U.one
  | _ -> Alcotest.fail "call failed");
  check_u "B received value" (State.balance state b_addr) (U.of_int 100)

let test_staticcall_blocks_writes () =
  (* B tries to SSTORE; when called via STATICCALL it must fail *)
  let state = State.create () in
  let b_addr = U.of_int 0xB0B in
  State.set_code state b_addr
    (B.assemble [ B.Push U.one; B.Push U.zero; B.Op Op.SSTORE; B.Op Op.STOP ]);
  let asm =
    [ B.Push U.zero; B.Push U.zero; B.Push U.zero; B.Push U.zero;
      B.Push b_addr; B.Op Op.GAS; B.Op Op.STATICCALL ]
  in
  match run ~state (returning_word asm) with
  | I.Returned s, _ ->
      check_u "staticcall to writer returns 0 (failure)" (U.of_bytes s) U.zero
  | _ -> Alcotest.fail "staticcall test failed"

let test_delegatecall_storage_context () =
  (* B writes 7 to slot 0; A delegatecalls B: the write lands in A *)
  let state = State.create () in
  let b_addr = U.of_int 0xB0B in
  State.set_code state b_addr
    (B.assemble [ B.Push (U.of_int 7); B.Push U.zero; B.Op Op.SSTORE; B.Op Op.STOP ]);
  let asm =
    [ B.Push U.zero; B.Push U.zero; B.Push U.zero; B.Push U.zero;
      B.Push b_addr; B.Op Op.GAS; B.Op Op.DELEGATECALL; B.Op Op.POP;
      B.Op Op.STOP ]
  in
  (match run ~state asm with
  | I.Returned _, _ -> ()
  | _ -> Alcotest.fail "delegatecall failed");
  check_u "write in caller's storage" (State.sload state contract U.zero)
    (U.of_int 7);
  check_u "callee storage untouched" (State.sload state b_addr U.zero) U.zero

let test_deployer () =
  (* wrap a runtime, execute deployment code, get the runtime back *)
  let runtime = B.assemble (returning_word [ B.Push (U.of_int 99) ]) in
  let state = State.create () in
  State.set_code state contract (B.deployer runtime);
  let o, _ = I.call state ~caller ~target:contract ~value:U.zero ~calldata:"" in
  match o with
  | I.Returned code ->
      Alcotest.(check string) "deployer returns runtime"
        (Ethainter_word.Hex.encode runtime)
        (Ethainter_word.Hex.encode code)
  | _ -> Alcotest.fail "deployment failed"

let test_addmod_mulmod_opcodes () =
  check_u "addmod opcode"
    (word_result
       [ B.Push (U.of_int 8); B.Push (U.of_int 10); B.Push (U.of_int 10);
         B.Op Op.ADDMOD ])
    (U.of_int 4);
  check_u "mulmod opcode"
    (word_result
       [ B.Push (U.of_int 8); B.Push (U.of_int 10); B.Push (U.of_int 10);
         B.Op Op.MULMOD ])
    (U.of_int 4)

let test_signextend_opcode () =
  check_u "signextend 0 0xff"
    (word_result
       [ B.Push (U.of_int 0xff); B.Push U.zero; B.Op Op.SIGNEXTEND ])
    U.max_value

let test_create_deploys_child () =
  (* parent CREATEs a child whose initcode returns a tiny runtime *)
  let child_runtime = B.assemble [ B.Op Op.STOP ] in
  let initcode = B.deployer child_runtime in
  let state = State.create () in
  State.set_balance state contract (U.of_int 100);
  (* store initcode into memory via MSTOREs, then CREATE(0, 0, len) *)
  let pad = ((String.length initcode + 31) / 32 * 32) - String.length initcode in
  let padded = initcode ^ String.make pad '\000' in
  let stores =
    List.concat
      (List.init
         (String.length padded / 32)
         (fun i ->
           [ B.Push (U.of_bytes (String.sub padded (i * 32) 32));
             B.Push (U.of_int (i * 32)); B.Op Op.MSTORE ]))
  in
  let asm =
    stores
    @ [ B.Push (U.of_int (String.length initcode)); B.Push U.zero;
        B.Push U.zero; B.Op Op.CREATE ]
  in
  (match run ~state (returning_word asm) with
  | I.Returned s, _ ->
      let child = U.of_bytes s in
      Alcotest.(check bool) "child address nonzero" false (U.is_zero child);
      Alcotest.(check string) "child code installed"
        (Ethainter_word.Hex.encode child_runtime)
        (Ethainter_word.Hex.encode (State.code state child))
  | _ -> Alcotest.fail "create failed")

let test_returndatacopy_oob_fails () =
  (* RETURNDATACOPY past the end of return data must abort the frame *)
  let state = State.create () in
  let asm =
    [ B.Push (U.of_int 32); B.Push U.zero; B.Push U.zero;
      B.Op Op.RETURNDATACOPY; B.Op Op.STOP ]
  in
  match run ~state asm with
  | I.Failed _, _ -> ()
  | _ -> Alcotest.fail "expected returndatacopy OOB failure"

let test_extcodesize () =
  let state = State.create () in
  let other = U.of_int 0xE57 in
  State.set_code state other "\x00\x01\x02";
  check_u "extcodesize of other"
    (word_result ~state [ B.Push other; B.Op Op.EXTCODESIZE ])
    (U.of_int 3);
  check_u "extcodesize of EOA"
    (word_result ~state [ B.Push (U.of_int 0xDEAD); B.Op Op.EXTCODESIZE ])
    U.zero

let test_callcode_storage_context () =
  (* CALLCODE runs callee code in the caller's storage, like
     DELEGATECALL but with its own caller/value *)
  let state = State.create () in
  let b_addr = U.of_int 0xB0B in
  State.set_code state b_addr
    (B.assemble
       [ B.Push (U.of_int 9); B.Push U.zero; B.Op Op.SSTORE; B.Op Op.STOP ]);
  let asm =
    [ B.Push U.zero; B.Push U.zero; B.Push U.zero; B.Push U.zero;
      B.Push U.zero; B.Push b_addr; B.Op Op.GAS; B.Op Op.CALLCODE;
      B.Op Op.POP; B.Op Op.STOP ]
  in
  (match run ~state asm with
  | I.Returned _, _ -> ()
  | _ -> Alcotest.fail "callcode failed");
  check_u "write landed in caller" (State.sload state contract U.zero)
    (U.of_int 9)

let test_out_of_gas () =
  (* an infinite loop must be stopped by gas/step accounting *)
  let asm = [ B.Label "top"; B.PushLabel "top"; B.Op Op.JUMP ] in
  let state = State.create () in
  State.set_code state contract (B.assemble asm);
  let o, _ =
    I.call ~gas:10_000 state ~caller ~target:contract ~value:U.zero
      ~calldata:""
  in
  match o with
  | I.Failed _ -> ()
  | _ -> Alcotest.fail "expected out-of-gas failure"

let test_disassembler_roundtrip () =
  let asm =
    [ B.Push (U.of_int 0xdead); B.Push U.zero; B.Op Op.MSTORE;
      B.Op Op.CALLER; B.Op Op.POP; B.Op Op.STOP ]
  in
  let code = B.assemble asm in
  let instrs = B.disassemble code in
  Alcotest.(check int) "instruction count" 6 (List.length instrs);
  (* PUSH immediate decoded *)
  match instrs with
  | { B.op = Op.PUSH 2; imm = Some v; _ } :: _ ->
      check_u "push imm" v (U.of_int 0xdead)
  | _ -> Alcotest.fail "bad disassembly"

let test_jumpdests_in_push_data () =
  (* a 0x5b byte inside PUSH data is not a valid jump destination *)
  let code = B.assemble [ B.Push (U.of_int 0x5b); B.Op Op.STOP ] in
  let dests = B.jumpdests code in
  Alcotest.(check int) "no jumpdests" 0 (Hashtbl.length dests)

(* differential property: compiled binop = Uint256 result *)
(* Regression: [Memory.ensure] rounds MSIZE up to a 32-byte boundary;
   the capacity must cover the *rounded* size. The old code grew the
   buffer to the unrounded request, so capacity 1024 + [ensure 2049]
   left size 2080 > capacity 2049 — the next growth's blit of [size]
   bytes then raised Invalid_argument, and MSIZE reported bytes that
   were never allocated. *)
let test_memory_ensure_boundary () =
  let m = I.Memory.create () in
  I.Memory.ensure m 2049;
  Alcotest.(check int) "msize rounds up" 2080 (I.Memory.size m);
  (* this second growth blits [size] bytes out of the old buffer *)
  I.Memory.ensure m 100_000;
  Alcotest.(check int) "second growth" 100_000 (I.Memory.size m);
  I.Memory.store_byte m 99_999 0xab;
  Alcotest.(check string) "tail byte readable" "\xab"
    (I.Memory.load_bytes m 99_999 1)

let test_memory_growth_boundary_evm () =
  (* same boundary end to end: MSTORE8 at 2048 puts the memory exactly
     on the bug's size/capacity mismatch; the MSTORE at 4000 then
     forces the growth blit that used to crash the interpreter *)
  check_u "value survives growth across the boundary"
    (word_result
       [ B.Push (U.of_int 0xEF); B.Push (U.of_int 2048); B.Op Op.MSTORE8;
         B.Push (U.of_int 0xabcd); B.Push (U.of_int 4000); B.Op Op.MSTORE;
         B.Push (U.of_int 2048); B.Op Op.MLOAD ])
    (U.shift_left (U.of_int 0xEF) 248)

let arb_small = QCheck.(map U.of_int (int_bound 1_000_000))
let arb_pair = QCheck.pair arb_small arb_small

let diff_prop name op f =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:100 arb_pair (fun (a, b) ->
         let r = word_result [ B.Push b; B.Push a; B.Op op ] in
         U.equal r (f a b)))

let properties =
  [ diff_prop "ADD = Uint256.add" Op.ADD U.add;
    diff_prop "SUB = Uint256.sub" Op.SUB U.sub;
    diff_prop "MUL = Uint256.mul" Op.MUL U.mul;
    diff_prop "DIV = Uint256.div" Op.DIV U.div;
    diff_prop "MOD = Uint256.rem" Op.MOD U.rem;
    diff_prop "AND = Uint256.logand" Op.AND U.logand;
    diff_prop "XOR = Uint256.logxor" Op.XOR U.logxor;
    diff_prop "LT" Op.LT (fun a b -> U.of_bool (U.lt a b));
    diff_prop "GT" Op.GT (fun a b -> U.of_bool (U.gt a b));
  ]

let () =
  Alcotest.run "evm"
    [ ( "interpreter",
        [ Alcotest.test_case "arith add" `Quick test_arith;
          Alcotest.test_case "arith more" `Quick test_arith_more;
          Alcotest.test_case "stack ops" `Quick test_stack_ops;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "memory ensure boundary" `Quick
            test_memory_ensure_boundary;
          Alcotest.test_case "memory growth boundary (evm)" `Quick
            test_memory_growth_boundary_evm;
          Alcotest.test_case "storage" `Quick test_storage;
          Alcotest.test_case "calldata" `Quick test_calldata;
          Alcotest.test_case "environment" `Quick test_env_ops;
          Alcotest.test_case "jump" `Quick test_jumps;
          Alcotest.test_case "jumpi" `Quick test_jumpi;
          Alcotest.test_case "sha3" `Quick test_sha3_opcode;
          Alcotest.test_case "revert rollback" `Quick test_revert_rolls_back;
          Alcotest.test_case "selfdestruct" `Quick test_selfdestruct;
          Alcotest.test_case "call with value" `Quick test_call_and_value;
          Alcotest.test_case "staticcall blocks writes" `Quick
            test_staticcall_blocks_writes;
          Alcotest.test_case "delegatecall context" `Quick
            test_delegatecall_storage_context;
          Alcotest.test_case "deployer" `Quick test_deployer;
          Alcotest.test_case "addmod/mulmod" `Quick
            test_addmod_mulmod_opcodes;
          Alcotest.test_case "signextend" `Quick test_signextend_opcode;
          Alcotest.test_case "create" `Quick test_create_deploys_child;
          Alcotest.test_case "returndatacopy OOB" `Quick
            test_returndatacopy_oob_fails;
          Alcotest.test_case "extcodesize" `Quick test_extcodesize;
          Alcotest.test_case "callcode context" `Quick
            test_callcode_storage_context;
          Alcotest.test_case "out of gas" `Quick test_out_of_gas ] );
      ( "bytecode",
        [ Alcotest.test_case "disassembler" `Quick test_disassembler_roundtrip;
          Alcotest.test_case "jumpdest in push data" `Quick
            test_jumpdests_in_push_data ] );
      ("differential", properties) ]
