(* PR 8: pre-decoded basic-block EVM programs.

   - decoder invariants: truncated-PUSH zero-fill, JUMPDEST bytes
     inside PUSH immediates never valid targets, contiguous block
     partition with per-block gas/stack metadata consistent;
   - block-partition differential: Program.t blocks (and the
     decompiler's split_blocks over them) equal the legacy splitter
     rule re-derived from Bytecode.disassemble;
   - engine differential: the Decoded interpreter is trace-, outcome-,
     gas-, log-, effect- and state-identical to the Bytewise reference
     over handcrafted edge cases and the seeded MiniSol corpus,
     including out-of-gas and step-limit sweeps;
   - decode-once: a multi-state, multi-call replay performs exactly one
     decode per unique code hash (telemetry counters, PR 7 style). *)

module U = Ethainter_word.Uint256
module Op = Ethainter_evm.Opcode
module B = Ethainter_evm.Bytecode
module P = Ethainter_evm.Program
module State = Ethainter_evm.State
module I = Ethainter_evm.Interp
module T = Ethainter_chain.Testnet
module Decomp = Ethainter_tac.Decomp
module G = Ethainter_corpus.Generator
module Kill = Ethainter_kill.Kill

let caller = U.of_int 0xCA11E4
let contract = U.of_int 0xC0DE

let rec take n = function
  | [] -> []
  | x :: r -> if n <= 0 then [] else x :: take (n - 1) r

(* ---------------- reference partition (legacy rule) ---------------- *)

(* The splitter rule decomp.ml used before it consumed Program.t,
   re-derived here from the raw disassembly: boundaries at pc 0, every
   JUMPDEST, and the instruction after every terminator. *)
let ref_partition (code : string) : (int * (int * string) list) list =
  let instrs = B.disassemble code in
  let boundaries = Hashtbl.create 16 in
  Hashtbl.replace boundaries 0 ();
  let rec mark = function
    | [] -> ()
    | (i : B.instr) :: rest ->
        (match i.B.op with
        | Op.JUMPDEST -> Hashtbl.replace boundaries i.B.pc ()
        | op when Op.is_block_terminator op -> (
            match rest with
            | next :: _ -> Hashtbl.replace boundaries next.B.pc ()
            | [] -> ())
        | _ -> ());
        mark rest
  in
  mark instrs;
  let blocks = ref [] and cur = ref [] and entry = ref 0 in
  List.iteri
    (fun k (i : B.instr) ->
      if k > 0 && Hashtbl.mem boundaries i.B.pc then begin
        blocks := (!entry, List.rev !cur) :: !blocks;
        entry := i.B.pc;
        cur := []
      end;
      cur := (i.B.pc, Op.name i.B.op) :: !cur)
    instrs;
  if !cur <> [] then blocks := (!entry, List.rev !cur) :: !blocks;
  List.rev !blocks

let prog_partition (p : P.t) : (int * (int * string) list) list =
  Array.to_list p.P.blocks
  |> List.map (fun (b : P.block) ->
         let is_ = P.block_instrs p b in
         ( (List.hd is_).B.pc,
           List.map (fun (i : B.instr) -> (i.B.pc, Op.name i.B.op)) is_ ))

let partition_str part =
  String.concat ";"
    (List.map
       (fun (e, instrs) ->
         Printf.sprintf "%d:[%s]" e
           (String.concat ","
              (List.map (fun (pc, op) -> Printf.sprintf "%d.%s" pc op) instrs)))
       part)

(* a small zoo of codes covering the decoder's edge cases *)
let edge_codes : (string * string) list =
  [ ("empty", "");
    ("single stop", "\x00");
    ("truncated push32", "\x7f\x01\x02");
    ("truncated push2", "\x61\x05");
    ("jumpdest in push data", "\x60\x5b\x5b\x00");
    ("unknown bytes", "\x01\xf9\xfc\x21");
    ("terminator at end", "\x60\x01\x60\x02\x01\x00");
    ( "dispatcher-ish",
      B.assemble
        [ B.Push U.zero; B.Op Op.CALLDATALOAD; B.Push (U.of_int 0xe0);
          B.Op Op.SHR; B.Push (U.of_int 0xabcdef01); B.Op Op.EQ;
          B.PushLabel "f"; B.Op Op.JUMPI; B.Push U.zero; B.Push U.zero;
          B.Op Op.REVERT; B.Label "f"; B.Push U.one; B.Push U.zero;
          B.Op Op.MSTORE; B.Push (U.of_int 32); B.Push U.zero;
          B.Op Op.RETURN ] ) ]

let corpus_codes () =
  G.mainnet ~seed:7 ~size:10 ()
  |> List.concat_map (fun (i : G.instance) ->
         [ (i.G.i_name ^ "/runtime", i.G.i_runtime);
           (i.G.i_name ^ "/deploy", i.G.i_deploy) ])

(* ---------------- decoder invariant tests ---------------- *)

let test_truncated_push_zero_fill () =
  let p = P.decode "\x7f\x01\x02" in
  Alcotest.(check int) "one instr" 1 (P.instr_count p);
  let i = p.P.instrs.(0) in
  (match i.B.op with
  | Op.PUSH 32 -> ()
  | _ -> Alcotest.fail "expected PUSH32");
  (* bytes past end-of-code read as zero: immediate = 0x0102 << 240 *)
  let expected =
    U.shift_left (U.of_int 0x0102) 240
  in
  (match i.B.imm with
  | Some v -> Alcotest.(check string) "zero filled" (U.to_hex expected) (U.to_hex v)
  | None -> Alcotest.fail "missing immediate")

let test_jumpdest_in_immediate_not_valid () =
  (* 0x60 0x5b: PUSH1 with immediate byte 0x5b; then a real JUMPDEST *)
  let p = P.decode "\x60\x5b\x5b\x00" in
  Alcotest.(check bool) "immediate byte not a target" false (P.is_jumpdest p 1);
  Alcotest.(check bool) "real JUMPDEST is" true (P.is_jumpdest p 2);
  Alcotest.(check bool) "out of range" false (P.is_jumpdest p 99)

let test_block_metadata_consistent () =
  List.iter
    (fun (name, code) ->
      let p = P.decode code in
      let m = P.instr_count p in
      let covered = ref 0 in
      Array.iteri
        (fun k (b : P.block) ->
          Alcotest.(check int)
            (name ^ ": blocks contiguous")
            !covered b.P.bb_start;
          covered := !covered + b.P.bb_len;
          Alcotest.(check bool) (name ^ ": non-empty") true (b.P.bb_len > 0);
          (* bb_gas is the sum of base costs; gas_rest.(i) the sum
             strictly after i within the block *)
          let sum = ref 0 in
          for i = b.P.bb_start + b.P.bb_len - 1 downto b.P.bb_start do
            Alcotest.(check int)
              (Printf.sprintf "%s: gas_rest %d" name i)
              !sum p.P.gas_rest.(i);
            sum := !sum + Op.base_gas p.P.instrs.(i).B.op
          done;
          Alcotest.(check int) (name ^ ": bb_gas") !sum b.P.bb_gas;
          (* the block index is dispatchable from its entry pc *)
          Alcotest.(check int)
            (name ^ ": block_at_pc")
            k
            p.P.block_at_pc.(p.P.instrs.(b.P.bb_start).B.pc))
        p.P.blocks;
      Alcotest.(check int) (name ^ ": partition covers") m !covered)
    (edge_codes @ corpus_codes ())

let test_partition_matches_legacy () =
  List.iter
    (fun (name, code) ->
      let p = P.decode code in
      Alcotest.(check string)
        (name ^ ": same partition")
        (partition_str (ref_partition code))
        (partition_str (prog_partition p)))
    (edge_codes @ corpus_codes ())

let test_split_blocks_over_program () =
  List.iter
    (fun (name, code) ->
      let tbl = Decomp.split_blocks (P.of_code code) in
      let got =
        Hashtbl.fold
          (fun e (bi : Decomp.blockinfo) acc ->
            ( e,
              List.map
                (fun (i : B.instr) -> (i.B.pc, Op.name i.B.op))
                bi.Decomp.instrs )
            :: acc)
          tbl []
        |> List.sort compare
      in
      let expected = List.sort compare (ref_partition code) in
      Alcotest.(check string)
        (name ^ ": split_blocks = legacy")
        (partition_str expected) (partition_str got))
    (edge_codes @ corpus_codes ())

(* ---------------- engine differential ---------------- *)

let outcome_str = function
  | I.Returned s -> "returned:" ^ s
  | I.Reverted s -> "reverted:" ^ s
  | I.Failed m -> "failed:" ^ m

let effect_str = function
  | I.E_sstore { es_addr; es_slot } ->
      "sstore " ^ U.to_hex es_addr ^ " " ^ U.to_hex es_slot
  | I.E_create a -> "create " ^ U.to_hex a
  | I.E_selfdestruct a -> "selfdestruct " ^ U.to_hex a

let state_fingerprint (st : State.t) : string =
  State.snapshot st
  |> List.map (fun (addr, (bal, nonce, code, slots, destroyed), _prog) ->
         let slots =
           List.map (fun (k, v) -> U.to_hex k ^ "=" ^ U.to_hex v) slots
           |> List.sort compare |> String.concat ","
         in
         Printf.sprintf "%s|%s|%d|%S|%s|%b" (U.to_hex addr) (U.to_hex bal)
           nonce code slots destroyed)
  |> List.sort compare |> String.concat ";"

(* Run the same call under both engines on identically-prepared fresh
   states; every observable must agree bit for bit. *)
let run_both ?gas ?max_steps ~(name : string) ~(setup : State.t -> unit)
    ~(target : U.t) ~(calldata : string) ~(value : U.t) () =
  let go engine =
    let st = State.create () in
    setup st;
    let r = I.call_full ~engine ?gas ?max_steps st ~caller ~target ~value ~calldata in
    let trace =
      List.map
        (fun (t : I.trace_entry) ->
          Printf.sprintf "%d:%s:%d:%s" t.I.t_depth (U.to_hex t.I.t_addr)
            t.I.t_pc (Op.name t.I.t_op))
        r.I.tx_trace
    in
    let logs =
      List.map
        (fun (l : I.log_entry) ->
          Printf.sprintf "%s[%s]%S" (U.to_hex l.I.log_addr)
            (String.concat "," (List.map U.to_hex l.I.topics))
            l.I.data)
        r.I.tx_logs
    in
    ( outcome_str r.I.outcome, r.I.gas_used, trace, logs,
      List.map effect_str r.I.tx_effects, state_fingerprint st )
  in
  let od, gd, td, ld, ed, sd = go I.Decoded in
  let ob, gb, tb, lb, eb, sb = go I.Bytewise in
  Alcotest.(check string) (name ^ ": outcome") ob od;
  Alcotest.(check int) (name ^ ": gas_used") gb gd;
  Alcotest.(check (list string)) (name ^ ": trace") tb td;
  Alcotest.(check (list string)) (name ^ ": logs") lb ld;
  Alcotest.(check (list string)) (name ^ ": effects") eb ed;
  Alcotest.(check string) (name ^ ": final state") sb sd

let fund st = State.set_balance st caller (U.of_string "1000000000000000000")

let with_code code st =
  fund st;
  State.set_code st contract code

let ret_word body =
  body
  @ [ B.Push U.zero; B.Op Op.MSTORE; B.Push (U.of_int 32); B.Push U.zero;
      B.Op Op.RETURN ]

let loop_asm =
  (* count down from 40, then return the counter (0) *)
  [ B.Push (U.of_int 40); B.Label "loop"; B.Op (Op.DUP 1); B.Op Op.ISZERO;
    B.PushLabel "done"; B.Op Op.JUMPI; B.Push U.one; B.Op (Op.SWAP 1);
    B.Op Op.SUB; B.PushLabel "loop"; B.Op Op.JUMP; B.Label "done" ]
  @ ret_word []

let test_differential_handcrafted () =
  let cases =
    [ ("arith", ret_word [ B.Push (U.of_int 10); B.Push (U.of_int 20); B.Op Op.ADD ]);
      ("loop", loop_asm);
      ("bad jump", [ B.Push (U.of_int 3); B.Op Op.JUMP ]);
      ("jump into immediate", [ B.Push (U.of_int 0x5b); B.Push U.one; B.Op Op.JUMP ]);
      ("stack underflow", [ B.Op Op.ADD ]);
      ("invalid opcode", [ B.Raw "\xfe" ]);
      ("truncated push executed", [ B.Raw "\x61\x05" ]);
      ("fall off end", [ B.Push U.one; B.Op Op.POP ]);
      ("gas observable",
       ret_word [ B.Op Op.GAS; B.Op Op.GAS; B.Op Op.SUB ]);
      ("gas absolute", ret_word [ B.Push U.one; B.Op Op.POP; B.Op Op.GAS ]);
      ("msize", ret_word
         [ B.Push (U.of_int 0xff); B.Push (U.of_int 200); B.Op Op.MSTORE;
           B.Op Op.MSIZE ]);
      ("pc opcode", ret_word [ B.Push U.one; B.Op Op.PC; B.Op Op.ADD ]);
      ("storage + log",
       [ B.Push (U.of_int 7); B.Push (U.of_int 3); B.Op Op.SSTORE;
         B.Push (U.of_int 0x11); B.Push (U.of_int 32); B.Push U.zero;
         B.Op (Op.LOG 1); B.Op Op.STOP ]);
      ("selfdestruct", [ B.Push caller; B.Op Op.SELFDESTRUCT ]);
      ("revert with data",
       [ B.Push (U.of_int 0xdead); B.Push U.zero; B.Op Op.MSTORE;
         B.Push (U.of_int 32); B.Push U.zero; B.Op Op.REVERT ]) ]
  in
  List.iter
    (fun (name, asm) ->
      let code = B.assemble asm in
      run_both ~name ~setup:(with_code code) ~target:contract ~calldata:""
        ~value:U.zero ())
    cases

let test_differential_gas_sweep () =
  (* out-of-gas at every possible cut point of a storage-heavy program:
     the block pre-charge must degrade to per-instruction charging with
     identical failure point, trace, and (negative-clamped) gas_used *)
  let code =
    B.assemble
      ([ B.Push (U.of_int 7); B.Push (U.of_int 3); B.Op Op.SSTORE;
         B.Push (U.of_int 3); B.Op Op.SLOAD ]
      @ ret_word [])
  in
  let gases = [ 0; 1; 2; 3; 5; 8; 10; 500; 801; 5006; 5806; 5830; 100_000 ] in
  List.iter
    (fun gas ->
      run_both ~gas
        ~name:(Printf.sprintf "gas=%d" gas)
        ~setup:(with_code code) ~target:contract ~calldata:"" ~value:U.zero ())
    gases

let test_differential_step_limit_sweep () =
  let code = B.assemble loop_asm in
  List.iter
    (fun ms ->
      run_both ~max_steps:ms
        ~name:(Printf.sprintf "max_steps=%d" ms)
        ~setup:(with_code code) ~target:contract ~calldata:"" ~value:U.zero ())
    [ 1; 2; 3; 7; 10; 37; 100; 1000 ]

let test_differential_calls () =
  let callee_addr = U.of_int 0xCA11EE in
  let callee =
    B.assemble
      (ret_word
         [ B.Push U.zero; B.Op Op.CALLDATALOAD; B.Push (U.of_int 2);
           B.Op Op.MUL; B.Op (Op.DUP 1); B.Push (U.of_int 5); B.Op Op.SSTORE ])
  in
  let caller_code =
    B.assemble
      ([ B.Push (U.of_int 21); B.Push U.zero; B.Op Op.MSTORE;
         (* CALL gas target value in_off in_len out_off out_len *)
         B.Push (U.of_int 32); B.Push (U.of_int 64); B.Push (U.of_int 32);
         B.Push U.zero; B.Push U.zero; B.Push callee_addr;
         B.Push (U.of_int 100_000); B.Op Op.CALL; B.Op Op.POP ]
      @ ret_word [ B.Push (U.of_int 64); B.Op Op.MLOAD ])
  in
  run_both ~name:"nested call"
    ~setup:(fun st ->
      fund st;
      State.set_code st contract caller_code;
      State.set_code st callee_addr callee)
    ~target:contract ~calldata:"" ~value:U.zero ()

let test_differential_create () =
  (* initcode: copy 2 runtime bytes (two STOPs) out of itself, return
     them; the creator MSTOREs the initcode and CREATEs from memory *)
  let initcode =
    "\x60\x02\x60\x0c\x60\x00\x39\x60\x02\x60\x00\xf3\x00\x00"
  in
  let creator =
    B.assemble
      ([ B.Push (U.of_bytes (initcode ^ String.make 18 '\000'));
         B.Push U.zero; B.Op Op.MSTORE;
         B.Push (U.of_int (String.length initcode)); B.Push U.zero;
         B.Push U.zero; B.Op Op.CREATE ]
      @ ret_word [])
  in
  run_both ~name:"create child" ~setup:(with_code creator) ~target:contract
    ~calldata:"" ~value:U.zero ()

let test_differential_corpus () =
  let insts = G.mainnet ~seed:13 ~size:10 () in
  List.iter
    (fun (i : G.instance) ->
      (* constructor execution (deploy code) *)
      run_both
        ~name:(i.G.i_name ^ "/deploy")
        ~setup:(with_code i.G.i_deploy) ~target:contract ~calldata:""
        ~value:U.zero ();
      (* runtime entry points harvested from the dispatcher *)
      let sels =
        take 4 (Kill.harvest_selectors (Decomp.decompile i.G.i_runtime))
      in
      let calldatas =
        "" :: "\x01\x02"
        :: List.map (fun s -> Kill.selector_calldata s [ U.of_int 5 ]) sels
      in
      List.iter
        (fun cd ->
          run_both
            ~name:(i.G.i_name ^ "/call")
            ~setup:(with_code i.G.i_runtime) ~target:contract ~calldata:cd
            ~value:U.zero ())
        calldatas)
    insts

let test_testnet_replay_differential () =
  (* identical deterministic workload on two nets that differ only in
     engine: every receipt must agree *)
  let insts = G.mainnet ~seed:21 ~size:6 () in
  let receipt_fp (r : T.receipt) =
    Printf.sprintf "%s>%s created=%s %s gas=%d trace=%d logs=%d effects=%s"
      (U.to_hex r.T.from)
      (match r.T.to_ with Some a -> U.to_hex a | None -> "-")
      (match r.T.created with Some a -> U.to_hex a | None -> "-")
      (outcome_str r.T.outcome) r.T.gas_used (List.length r.T.trace)
      (List.length r.T.logs)
      (String.concat "," (List.map effect_str r.T.effects))
  in
  let run engine =
    let net = T.create ~engine () in
    let from = T.account_of_seed "alice" in
    T.fund_account net from (U.of_string "100000000000000000000000");
    let addrs =
      List.filter_map
        (fun (i : G.instance) ->
          (T.deploy net ~from ~value:i.G.i_eth_held i.G.i_deploy).T.created)
        insts
    in
    List.iter
      (fun a ->
        let p = Decomp.decompile (State.code (T.state net) a) in
        List.iter
          (fun s ->
            ignore
              (T.transact net ~from ~to_:a
                 (Kill.selector_calldata s [ U.of_int 5 ])))
          (take 3 (Kill.harvest_selectors p)))
      addrs;
    T.blocks_since net 0
    |> List.concat_map (fun (b : T.block) -> b.T.b_receipts)
    |> List.map receipt_fp
  in
  Alcotest.(check (list string))
    "replay receipts identical" (run I.Bytewise) (run I.Decoded)

(* ---------------- decode-once cache property ---------------- *)

let test_decode_once () =
  (* four codes never seen by any other test in this binary (distinct
     magic constants), deployed into three independent states, five
     calls each: exactly four decodes, everything else memo/cache hits *)
  let codes =
    List.init 4 (fun k ->
        B.assemble
          (ret_word [ B.Push (U.of_int (0xBEEF0000 + k)); B.Op (Op.DUP 1);
                      B.Op Op.ADD ]))
  in
  let s0 = P.stats () in
  for _ = 1 to 3 do
    let st = State.create () in
    fund st;
    List.iteri
      (fun k code -> State.set_code st (U.of_int (0x1C0DE00 + k)) code)
      codes;
    for _ = 1 to 5 do
      List.iteri
        (fun k _ ->
          let r =
            I.call_full st ~caller ~target:(U.of_int (0x1C0DE00 + k))
              ~value:U.zero ~calldata:""
          in
          match r.I.outcome with
          | I.Returned _ -> ()
          | o -> Alcotest.fail ("call failed: " ^ outcome_str o))
        codes
    done
  done;
  let s1 = P.stats () in
  Alcotest.(check int)
    "one decode per unique code hash" 4 (s1.P.decodes - s0.P.decodes);
  (* states 2 and 3 memoize from the global cache without decoding:
     at least one hit per (state, code) after the first state *)
  Alcotest.(check bool)
    "repeat states hit the cache" true
    (s1.P.hits - s0.P.hits >= 8)

let test_set_code_invalidates_memo () =
  let st = State.create () in
  let a = U.of_int 0x5eed in
  State.set_code st a (B.assemble (ret_word [ B.Push (U.of_int 1) ]));
  let p1 = State.program st a in
  State.set_code st a (B.assemble (ret_word [ B.Push (U.of_int 2) ]));
  let p2 = State.program st a in
  Alcotest.(check bool) "different programs" false (p1 == p2);
  Alcotest.(check bool)
    "new code decoded" true
    (p2.P.instrs.(0).B.imm = Some (U.of_int 2))

let test_telemetry_source () =
  let snap = Ethainter_core.Telemetry.capture () in
  match List.assoc_opt "evm_program" snap.Ethainter_core.Telemetry.extras with
  | None -> Alcotest.fail "evm_program source not registered"
  | Some pairs ->
      List.iter
        (fun k ->
          Alcotest.(check bool) ("has " ^ k) true (List.mem_assoc k pairs))
        [ "decodes"; "hits"; "evictions"; "entries" ]

let () =
  Alcotest.run "evm_program"
    [ ( "decoder",
        [ Alcotest.test_case "truncated PUSH zero-fill" `Quick
            test_truncated_push_zero_fill;
          Alcotest.test_case "JUMPDEST in immediate invalid" `Quick
            test_jumpdest_in_immediate_not_valid;
          Alcotest.test_case "block metadata consistent" `Quick
            test_block_metadata_consistent;
          Alcotest.test_case "partition = legacy rule" `Quick
            test_partition_matches_legacy;
          Alcotest.test_case "split_blocks over Program.t" `Quick
            test_split_blocks_over_program ] );
      ( "differential",
        [ Alcotest.test_case "handcrafted edge cases" `Quick
            test_differential_handcrafted;
          Alcotest.test_case "out-of-gas sweep" `Quick
            test_differential_gas_sweep;
          Alcotest.test_case "step-limit sweep" `Quick
            test_differential_step_limit_sweep;
          Alcotest.test_case "nested calls" `Quick test_differential_calls;
          Alcotest.test_case "create" `Quick test_differential_create;
          Alcotest.test_case "seeded corpus" `Quick test_differential_corpus;
          Alcotest.test_case "testnet replay" `Quick
            test_testnet_replay_differential ] );
      ( "cache",
        [ Alcotest.test_case "decode once per code hash" `Quick
            test_decode_once;
          Alcotest.test_case "set_code invalidates memo" `Quick
            test_set_code_invalidates_memo;
          Alcotest.test_case "telemetry source" `Quick test_telemetry_source ]
      ) ]
