(* Streaming-index tests: the PR 7 acceptance criteria.

   - deployments enter the index and get verdicts;
   - the incremental view equals a cold batch sweep of the final chain
     state (incremental == batch differential);
   - invalidation precision: K dirty contracts cost exactly K back-end
     re-analyses and ZERO front-end recomputations, proven via
     Telemetry counter diffs;
   - non-dependency writes invalidate nothing;
   - self-destructs drop verdicts;
   - the telemetry codec roundtrips;
   - watch/index-stats end-to-end over a socketpair daemon.

   Indexes here run without a pool (jobs inline on the sealing thread)
   so every block's consequences are observable deterministically right
   after the transaction returns; the socketpair test uses the server's
   real pool. *)

module U = Ethainter_word.Uint256
module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module Tel = Ethainter_core.Telemetry
module Cache = Ethainter_core.Cache
module T = Ethainter_chain.Testnet
module Idx = Ethainter_index.Index
module Server = Ethainter_serve.Server
module Client = Ethainter_serve.Client
module Proto = Ethainter_serve.Proto

(* Distinct constant per tag => distinct runtime bytecode => distinct
   cache keys (identical sources would alias front/back-end entries and
   void the precision accounting). Guards read only [owner] (slot 0);
   [beacon] (slot 1) is deliberate noise. *)
let source tag =
  Printf.sprintf
    {|contract Owned {
  address owner;
  uint256 beacon;
  constructor() { owner = msg.sender; }
  function tag() public returns (uint256) { return %d; }
  function ping() public { beacon = beacon + 1; }
  function setOwner(address o) public {
    require(msg.sender == owner);
    owner = o;
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
    tag

let compile tag = Ethainter_minisol.Codegen.compile_source (source tag)

let normalize (r : P.result) = { r with P.elapsed_s = 0.0 }

let funded seed =
  let net = T.create () in
  let boss = T.account_of_seed seed in
  T.fund_account net boss (U.of_string "0xffffffffffffffffffffffff");
  (net, boss)

let deploy_tag net boss tag =
  match (T.deploy net ~from:boss (compile tag)).T.created with
  | Some a -> a
  | None -> Alcotest.fail "deployment failed"

let get stats k =
  match List.assoc_opt k stats with
  | Some v -> v
  | None -> Alcotest.failf "index stats missing %s" k

(* ---------- basic lifecycle ---------- *)

let test_deploy_to_indexed () =
  let net, boss = funded "idx-basic" in
  let idx = Idx.create net in
  let addr = deploy_tag net boss 1 in
  Idx.drain idx;
  (match Idx.lookup idx addr with
  | Idx.Indexed v ->
      Alcotest.(check bool) "verdict has no error" true (v.Idx.v_result.P.error = None);
      Alcotest.(check int) "deployed at block 1" 1 v.Idx.v_deployed_block
  | _ -> Alcotest.fail "deployed contract not Indexed");
  Alcotest.(check bool) "unknown address is Unknown" true
    (Idx.lookup idx (T.account_of_seed "nobody") = Idx.Unknown);
  Alcotest.(check int) "one contract in contents" 1
    (List.length (Idx.contents idx));
  Idx.detach idx

let test_catchup_then_tail () =
  (* blocks sealed before create are replayed; later ones tail in *)
  let net, boss = funded "idx-catchup" in
  let a1 = deploy_tag net boss 1 in
  let idx = Idx.create net in
  let a2 = deploy_tag net boss 2 in
  Idx.drain idx;
  Alcotest.(check bool) "pre-create deployment indexed" true
    (match Idx.lookup idx a1 with Idx.Indexed _ -> true | _ -> false);
  Alcotest.(check bool) "post-create deployment indexed" true
    (match Idx.lookup idx a2 with Idx.Indexed _ -> true | _ -> false);
  Idx.detach idx

let test_selfdestruct_drops_verdict () =
  let net, boss = funded "idx-kill" in
  let idx = Idx.create net in
  let addr = deploy_tag net boss 1 in
  let keep = deploy_tag net boss 2 in
  Idx.drain idx;
  let r = T.call_fn net ~from:boss ~to_:addr "kill()" [] in
  Alcotest.(check bool) "kill succeeded" true (T.succeeded r);
  Idx.drain idx;
  Alcotest.(check bool) "destroyed status" true
    (Idx.lookup idx addr = Idx.Destroyed);
  (match Idx.contents idx with
  | [ (a, _, _) ] -> Alcotest.(check bool) "survivor kept" true (U.equal a keep)
  | l -> Alcotest.failf "expected 1 survivor, got %d" (List.length l));
  Alcotest.(check int) "destroyed counted" 1
    (int_of_float (get (Idx.stats idx) "index_destroyed"));
  Idx.detach idx

(* ---------- invalidation precision (the telemetry claim) ---------- *)

let test_invalidation_precision () =
  let net, boss = funded "idx-precision" in
  P.cache_clear ();
  let idx = Idx.create net in
  let n = 5 and k = 3 in
  let addrs = Array.init n (fun i -> deploy_tag net boss (100 + i)) in
  Idx.drain idx;
  let tel0 = Tel.capture () in
  let st0 = Idx.stats idx in
  (* rotate the admin key of exactly [k] contracts *)
  for i = 0 to k - 1 do
    let next = T.account_of_seed (Printf.sprintf "next-owner-%d" i) in
    let r =
      T.call_fn net ~from:boss ~to_:addrs.(i) "setOwner(address)" [ next ]
    in
    Alcotest.(check bool) "rotation succeeded" true (T.succeeded r)
  done;
  Idx.drain idx;
  let d = Tel.diff (Tel.capture ()) tel0 in
  let st1 = Idx.stats idx in
  let delta key = int_of_float (get st1 key -. get st0 key) in
  Alcotest.(check int) "exactly K verdicts invalidated" k
    (delta "index_invalidations");
  Alcotest.(check int) "exactly K re-analyses" k (delta "index_reanalyses");
  (* the acceptance claim: K dirty contracts cost exactly K back-end
     fixpoints and ZERO front-end recomputations *)
  Alcotest.(check int) "zero front-end recomputations" 0
    d.Tel.cache_fe.Cache.misses;
  Alcotest.(check int) "K front-end cache hits" k d.Tel.cache_fe.Cache.hits;
  Alcotest.(check int) "exactly K back-end re-runs" k
    d.Tel.cache_be.Cache.misses;
  Idx.detach idx

let test_noise_writes_do_not_invalidate () =
  let net, boss = funded "idx-noise" in
  let idx = Idx.create net in
  let n = 3 in
  let addrs = Array.init n (fun i -> deploy_tag net boss (200 + i)) in
  Idx.drain idx;
  let st0 = Idx.stats idx in
  (* slot 1 (beacon) is written, but no guard slice reads it *)
  Array.iter
    (fun addr -> ignore (T.call_fn net ~from:boss ~to_:addr "ping()" []))
    addrs;
  Idx.drain idx;
  let st1 = Idx.stats idx in
  Alcotest.(check int) "no invalidations from non-dependency writes" 0
    (int_of_float (get st1 "index_invalidations" -. get st0 "index_invalidations"));
  Alcotest.(check int) "no re-analyses either" 0
    (int_of_float (get st1 "index_analyses" -. get st0 "index_analyses"));
  Idx.detach idx

(* ---------- incremental == batch differential ---------- *)

let test_incremental_equals_batch () =
  let net, boss = funded "idx-diff" in
  let idx = Idx.create net in
  let n = 6 in
  let addrs = Array.init n (fun i -> deploy_tag net boss (300 + i)) in
  let owners = Array.make n boss in
  (* churn: rotations, noise, a batched block, a kill *)
  for k = 0 to 7 do
    let i = k mod n in
    let next = T.account_of_seed (Printf.sprintf "diff-owner-%d" k) in
    T.fund_account net next (U.of_string "0xffffffff");
    if
      T.succeeded
        (T.call_fn net ~from:owners.(i) ~to_:addrs.(i) "setOwner(address)"
           [ next ])
    then owners.(i) <- next
  done;
  T.in_block net (fun () ->
      ignore (T.call_fn net ~from:boss ~to_:addrs.(0) "ping()" []);
      ignore (T.call_fn net ~from:boss ~to_:addrs.(1) "ping()" []));
  ignore (T.call_fn net ~from:owners.(n - 1) ~to_:addrs.(n - 1) "kill()" []);
  Idx.drain idx;
  let live = T.live_contracts net in
  let batch = S.analyze_corpus (List.map snd live) in
  let incremental = Idx.contents idx in
  Alcotest.(check int) "same population" (List.length live)
    (List.length incremental);
  List.iter2
    (fun (ia, ic, ir) ((la, lc), br) ->
      Alcotest.(check bool) "same address" true (U.equal ia la);
      Alcotest.(check bool) "same bytecode" true (String.equal ic lc);
      Alcotest.(check bool) "same verdict" true
        (normalize ir = normalize br))
    incremental
    (List.combine live batch);
  Idx.detach idx

(* ---------- telemetry codec ---------- *)

let test_telemetry_codec_roundtrip () =
  (* a live snapshot with a registered source, exercised end to end *)
  let net, boss = funded "idx-codec" in
  let idx = Idx.create net in
  ignore (deploy_tag net boss 400);
  Idx.drain idx;
  let snap = Tel.capture () in
  Alcotest.(check bool) "index source sampled" true
    (List.mem_assoc "index" snap.Tel.extras);
  let enc = Tel.encode snap in
  (match Tel.decode enc with
  | Some snap' ->
      Alcotest.(check bool) "roundtrip exact" true (snap = snap')
  | None -> Alcotest.fail "snapshot failed to decode");
  List.iter
    (fun junk ->
      Alcotest.(check bool) "corrupt payload rejected" true
        (Tel.decode junk = None))
    [ ""; "garbage"; String.sub enc 0 (String.length enc / 2); enc ^ "x" ];
  Idx.detach idx

(* ---------- watch protocol end-to-end ---------- *)

let watch_status_of = function
  | Idx.Unknown -> Proto.Watch_unknown
  | Idx.Pending b -> Proto.Watch_pending b
  | Idx.Destroyed -> Proto.Watch_destroyed
  | Idx.Quarantined n -> Proto.Watch_quarantined n
  | Idx.Indexed v ->
      Proto.Watch_indexed
        { wi_deployed = v.Idx.v_deployed_block;
          wi_indexed = v.Idx.v_indexed_block;
          wi_result = v.Idx.v_result }

let test_watch_status_codec () =
  let result = P.run (P.request (P.Runtime (compile 500))) in
  List.iter
    (fun st ->
      Alcotest.(check bool) "watch status roundtrips" true
        (Proto.decode_watch_status (Proto.encode_watch_status st) = Some st))
    [ Proto.Watch_unknown; Proto.Watch_pending 7; Proto.Watch_destroyed;
      Proto.Watch_quarantined 3;
      Proto.Watch_indexed
        { wi_deployed = 3; wi_indexed = 9; wi_result = result } ];
  Alcotest.(check bool) "garbage rejected" true
    (Proto.decode_watch_status "nonsense" = None)

let test_watch_over_socketpair () =
  let server = Server.create ~workers:2 ~queue_depth:8 () in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Thread.create (fun () -> Server.serve_connection server a) () in
  let client = Client.of_fd b in
  (* no index attached: refused, connection intact *)
  (match Client.watch client ~addr_hex:"0x1234" with
  | Client.Error (Proto.Malformed _) -> ()
  | _ -> Alcotest.fail "watch without index not refused");
  (match Client.index_stats client with
  | Stdlib.Error (Proto.Malformed _) -> ()
  | _ -> Alcotest.fail "index_stats without index not refused");
  let net, boss = funded "idx-serve" in
  let idx = Idx.create ~pool:(Server.pool server) net in
  Server.set_index_handlers server
    (Some
       { Server.h_watch =
           (fun hex ->
             match U.of_hex (String.trim hex) with
             | addr -> watch_status_of (Idx.lookup idx addr)
             | exception _ -> Proto.Watch_unknown);
         h_index_stats = (fun () -> Idx.stats idx) });
  let addr = deploy_tag net boss 600 in
  let doomed = deploy_tag net boss 601 in
  Idx.drain idx;
  (match Client.watch client ~addr_hex:(U.to_hex addr) with
  | Client.Watch (Proto.Watch_indexed w) ->
      Alcotest.(check bool) "verdict clean" true (w.wi_result.P.error = None);
      (* the wire verdict is the in-process verdict, codec included *)
      (match Idx.lookup idx addr with
      | Idx.Indexed v ->
          Alcotest.(check bool) "wire == index" true
            (normalize w.wi_result = normalize v.Idx.v_result)
      | _ -> Alcotest.fail "index lost the verdict")
  | _ -> Alcotest.fail "no indexed verdict over the wire");
  ignore (T.call_fn net ~from:boss ~to_:doomed "kill()" []);
  Idx.drain idx;
  (match Client.watch client ~addr_hex:(U.to_hex doomed) with
  | Client.Watch Proto.Watch_destroyed -> ()
  | _ -> Alcotest.fail "destroyed contract not reported destroyed");
  (match Client.watch client ~addr_hex:(U.to_hex (T.account_of_seed "ghost")) with
  | Client.Watch Proto.Watch_unknown -> ()
  | _ -> Alcotest.fail "unknown address not reported unknown");
  (match Client.index_stats client with
  | Ok st ->
      Alcotest.(check bool) "index_contracts over the wire" true
        (get st "index_contracts" >= 1.0)
  | _ -> Alcotest.fail "index_stats refused with index attached");
  (* detaching restores the refusal *)
  Server.set_index_handlers server None;
  (match Client.watch client ~addr_hex:(U.to_hex addr) with
  | Client.Error (Proto.Malformed _) -> ()
  | _ -> Alcotest.fail "watch after detach not refused");
  Idx.detach idx;
  Client.close client;
  (try Thread.join reader with _ -> ());
  (try Unix.close a with _ -> ());
  Server.stop server

let () =
  Alcotest.run "index"
    [ ( "lifecycle",
        [ Alcotest.test_case "deploy to indexed" `Quick test_deploy_to_indexed;
          Alcotest.test_case "catchup then tail" `Quick test_catchup_then_tail;
          Alcotest.test_case "selfdestruct drops verdict" `Quick
            test_selfdestruct_drops_verdict ] );
      ( "invalidation",
        [ Alcotest.test_case "precision: K dirty -> K back ends, 0 front ends"
            `Quick test_invalidation_precision;
          Alcotest.test_case "noise writes invalidate nothing" `Quick
            test_noise_writes_do_not_invalidate ] );
      ( "differential",
        [ Alcotest.test_case "incremental == batch" `Quick
            test_incremental_equals_batch ] );
      ( "telemetry",
        [ Alcotest.test_case "codec roundtrip" `Quick
            test_telemetry_codec_roundtrip ] );
      ( "watch",
        [ Alcotest.test_case "status codec" `Quick test_watch_status_codec;
          Alcotest.test_case "end-to-end over socketpair" `Quick
            test_watch_over_socketpair ] ) ]
