(* Durability + supervised-recovery tests: the PR 9 acceptance
   criteria.

   Journal layer:
   - a fresh directory recovers empty; close writes a checkpoint that
     recovers with zero replay;
   - appends without a checkpoint (the crash shape) replay in order;
   - a torn tail — the writer died mid-write(2) — is detected,
     truncated away, and appending resumes cleanly;
   - a bit-flipped newest checkpoint falls back to the previous
     generation and replays both generations' journals: corrupt state
     is never served;
   - recovery is idempotent (recover twice, same answer).

   Index layer:
   - close/recover restores every verdict with ZERO re-analysis;
   - an outage window (blocks sealed while no index was attached)
     costs re-analysis for exactly the dirtied contracts, with zero
     front-end recomputations for anything previously seen;
   - kill -9 mid-stream (a forked child dying at a seeded crash/torn
     fault site inside the journal) followed by recovery over a
     deterministic replay of the same chain yields verdicts identical
     to a never-crashed batch sweep;
   - the poison-pill breaker quarantines a contract after 3
     consecutive failed analyses and short-circuits further jobs for
     the same bytecode.

   The fork-based test runs FIRST, before anything in this binary has
   spawned pools or domains, so the child is a plain single-threaded
   process. Indexes here run without a pool (jobs inline on the
   sealing thread) for determinism. *)

module U = Ethainter_word.Uint256
module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module F = Ethainter_core.Fault
module T = Ethainter_chain.Testnet
module J = Ethainter_index.Journal
module Idx = Ethainter_index.Index

let normalize (r : P.result) = { r with P.elapsed_s = 0.0 }

let temp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ethainter_journal_%d_%d" (Unix.getpid ()) !counter)

(* Same Owned shape as the index tests: guards read only [owner]
   (slot 0); distinct tag constants keep bytecodes (and breaker keys)
   distinct across tests. *)
let source tag =
  Printf.sprintf
    {|contract Owned {
  address owner;
  constructor() { owner = msg.sender; }
  function tag() public returns (uint256) { return %d; }
  function setOwner(address o) public {
    require(msg.sender == owner);
    owner = o;
  }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}
    tag

let compile tag = Ethainter_minisol.Codegen.compile_source (source tag)

let funded seed =
  let net = T.create () in
  let boss = T.account_of_seed seed in
  T.fund_account net boss (U.of_string "0xffffffffffffffffffffffff");
  (net, boss)

let deploy_tag net boss tag =
  match (T.deploy net ~from:boss (compile tag)).T.created with
  | Some a -> a
  | None -> Alcotest.fail "deployment failed"

let get stats k =
  match List.assoc_opt k stats with
  | Some v -> v
  | None -> Alcotest.failf "stats missing %s" k

(* ---------- deterministic workload (shared by child and parent of
   the kill test: byte-identical chains on both sides) ---------- *)

let drive_tick net boss fleet i =
  let a = deploy_tag net boss (700 + i) in
  fleet := !fleet @ [ (a, ref boss) ];
  (if i mod 2 = 1 && !fleet <> [] then begin
     let addr, owner = List.nth !fleet (i / 2 mod List.length !fleet) in
     let next = T.account_of_seed (Printf.sprintf "jr-owner-%d" i) in
     T.fund_account net next (U.of_string "0xffffffff");
     if
       T.succeeded
         (T.call_fn net ~from:!owner ~to_:addr "setOwner(address)" [ next ])
     then owner := next
   end);
  if List.length !fleet > 8 then
    match !fleet with
    | (addr, owner) :: rest ->
        ignore (T.call_fn net ~from:!owner ~to_:addr "kill()" []);
        fleet := rest
    | [] -> ()

(* ---------- kill -9 mid-stream differential ---------- *)

(* The child arms crash + torn-write faults on the journal's append
   path and drives the workload until one fires; [Fault.Crashed] at a
   write boundary leaves the same bytes on disk as kill -9 at that
   instruction, so exiting there IS the kill. The parent then replays
   the identical chain (all addresses derive from seeds and nonces),
   recovers, and the recovered index must match a never-crashed batch
   sweep contract for contract. *)
let test_kill_and_restart () =
  let jdir = temp_dir () in
  let ticks = 40 in
  (match Unix.fork () with
  | 0 ->
      let code =
        try
          F.configure (Some "crash=0.08,torn_write=0.2:1234");
          let net, boss = funded "jr-kill" in
          let idx = Idx.recover ~journal_dir:jdir net in
          let fleet = ref [] in
          (try
             for i = 0 to ticks - 1 do
               drive_tick net boss fleet i
             done;
             ignore idx;
             (* no fault fired: inconclusive, fail loudly *)
             64
           with F.Crashed _ -> 70)
        with _ -> 65
      in
      Unix._exit code
  | pid ->
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool)
        (Printf.sprintf "child died at an injected crash site (%s)"
           (match status with
           | Unix.WEXITED n -> Printf.sprintf "exit %d" n
           | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
           | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n))
        true
        (status = Unix.WEXITED 70);
      (* the journal must hold something: the child got past genesis *)
      Alcotest.(check bool) "journal directory is non-empty" true
        (Array.length (Sys.readdir jdir) > 0);
      let net, boss = funded "jr-kill" in
      let idx = Idx.recover ~journal_dir:jdir net in
      let fleet = ref [] in
      for i = 0 to ticks - 1 do
        drive_tick net boss fleet i
      done;
      Idx.drain idx;
      let live = T.live_contracts net in
      let batch =
        List.map
          (fun (_, code) -> S.analyze_request (P.request (P.Runtime code)))
          live
      in
      let incremental = Idx.contents idx in
      Alcotest.(check int) "same population" (List.length live)
        (List.length incremental);
      List.iter2
        (fun (ia, ic, ir) ((la, lc), br) ->
          Alcotest.(check bool) "same address" true (U.equal ia la);
          Alcotest.(check bool) "same bytecode" true (String.equal ic lc);
          Alcotest.(check bool) "recovered == never-crashed" true
            (normalize ir = normalize br))
        incremental
        (List.combine live batch);
      Idx.close idx)

(* ---------- journal layer ---------- *)

let obs_fixture n =
  { J.o_number = n;
    o_deployed = [ (U.of_int (100 + n), Printf.sprintf "code-%d" n) ];
    o_writes = [ (U.of_int (100 + n), U.of_int 0) ];
    o_destroyed = [] }

let verdict_fixture =
  lazy (P.run (P.request (P.Runtime (compile 42))))

let event_fixtures () =
  let r = Lazy.force verdict_fixture in
  [ J.Ev_block (obs_fixture 1);
    J.Ev_verdict
      { ev_addr = U.of_int 101; ev_indexed_block = 1; ev_runs = 1;
        ev_result = r };
    J.Ev_block (obs_fixture 2) ]

let check_events msg expected actual =
  Alcotest.(check int) (msg ^ ": event count") (List.length expected)
    (List.length actual);
  List.iter2
    (fun e a ->
      match (e, a) with
      | J.Ev_block o, J.Ev_block o' ->
          Alcotest.(check bool) (msg ^ ": block event") true (o = o')
      | ( J.Ev_verdict { ev_addr; ev_indexed_block; ev_runs; ev_result },
          J.Ev_verdict
            { ev_addr = ev_addr'; ev_indexed_block = ev_indexed_block';
              ev_runs = ev_runs'; ev_result = ev_result' } ) ->
          Alcotest.(check bool) (msg ^ ": verdict event") true
            (U.equal ev_addr ev_addr'
            && ev_indexed_block = ev_indexed_block'
            && ev_runs = ev_runs'
            && normalize ev_result = normalize ev_result')
      | _ -> Alcotest.fail (msg ^ ": event kind mismatch"))
    expected actual

let test_fresh_then_close_roundtrip () =
  (* a missing (even nested) directory starts fresh *)
  let jdir = Filename.concat (temp_dir ()) "nested" in
  let t, r = J.recover ~dir:jdir in
  Alcotest.(check bool) "fresh: no snapshot" true (r.J.r_snapshot = None);
  Alcotest.(check bool) "fresh: no events" true (r.J.r_events = []);
  Alcotest.(check bool) "fresh: no fallback" false r.J.r_checkpoint_fallback;
  Alcotest.(check bool) "fresh: no torn tail" false r.J.r_torn_tail;
  List.iter (J.append t) (event_fixtures ());
  let verdict = Lazy.force verdict_fixture in
  let snap =
    { J.s_cursor = 2;
      s_entries =
        [ { J.e_addr = U.of_int 101; e_code = "code-1"; e_deployed_block = 1;
            e_queued_block = 1; e_runs = 1;
            e_state = J.S_indexed (verdict, 1) };
          { J.e_addr = U.of_int 102; e_code = "code-2"; e_deployed_block = 2;
            e_queued_block = 2; e_runs = 0; e_state = J.S_pending } ] }
  in
  J.close t snap;
  let _, r2 = J.recover ~dir:jdir in
  (match r2.J.r_snapshot with
  | Some s ->
      Alcotest.(check int) "cursor restored" 2 s.J.s_cursor;
      Alcotest.(check int) "entries restored" 2 (List.length s.J.s_entries);
      List.iter2
        (fun e e' ->
          Alcotest.(check bool) "entry fields" true
            (U.equal e.J.e_addr e'.J.e_addr
            && e.J.e_code = e'.J.e_code
            && e.J.e_deployed_block = e'.J.e_deployed_block
            && e.J.e_queued_block = e'.J.e_queued_block
            && e.J.e_runs = e'.J.e_runs);
          match (e.J.e_state, e'.J.e_state) with
          | J.S_pending, J.S_pending | J.S_destroyed, J.S_destroyed -> ()
          | J.S_indexed (v, b), J.S_indexed (v', b') ->
              Alcotest.(check int) "indexed block" b b';
              Alcotest.(check bool) "verdict payload" true
                (normalize v = normalize v')
          | _ -> Alcotest.fail "entry state mismatch")
        snap.J.s_entries s.J.s_entries
  | None -> Alcotest.fail "checkpoint did not recover");
  Alcotest.(check bool) "closed cleanly: zero replay" true
    (r2.J.r_events = []);
  Alcotest.(check bool) "no fallback" false r2.J.r_checkpoint_fallback;
  Alcotest.(check bool) "no torn tail" false r2.J.r_torn_tail

let test_appends_without_checkpoint_replay () =
  (* the crash shape: records appended, no checkpoint, process gone *)
  let jdir = temp_dir () in
  let t, _ = J.recover ~dir:jdir in
  let evs = event_fixtures () in
  List.iter (J.append t) evs;
  (* no close: simply abandon [t], as a dead process would *)
  let _, r = J.recover ~dir:jdir in
  Alcotest.(check bool) "no snapshot yet" true (r.J.r_snapshot = None);
  check_events "uncheckpointed replay" evs r.J.r_events;
  Alcotest.(check bool) "no torn tail" false r.J.r_torn_tail

let test_torn_tail_truncated () =
  let jdir = temp_dir () in
  let t, _ = J.recover ~dir:jdir in
  let evs = event_fixtures () in
  List.iter (J.append t) evs;
  (* tear the log exactly as a mid-write(2) death would: a few bytes
     that parse as no valid record *)
  let wal = Filename.concat jdir "wal-000000000.ethj" in
  Alcotest.(check bool) "wal file exists" true (Sys.file_exists wal);
  let oc =
    open_out_gen [ Open_binary; Open_append; Open_wronly ] 0o644 wal
  in
  output_string oc "ETJR\x01B\x00\x00";
  close_out oc;
  let t2, r = J.recover ~dir:jdir in
  Alcotest.(check bool) "torn tail detected" true r.J.r_torn_tail;
  check_events "valid prefix survives" evs r.J.r_events;
  (* the tail was truncated: appending resumes and the next recovery
     is clean — double-recovery idempotence *)
  J.append t2 (J.Ev_block (obs_fixture 3));
  let _, r2 = J.recover ~dir:jdir in
  Alcotest.(check bool) "clean after truncation" false r2.J.r_torn_tail;
  check_events "appended past the truncation point"
    (evs @ [ J.Ev_block (obs_fixture 3) ])
    r2.J.r_events

let test_corrupt_checkpoint_falls_back () =
  let jdir = temp_dir () in
  let t, _ = J.recover ~dir:jdir in
  let snap1 = { J.s_cursor = 1; s_entries = [] } in
  J.checkpoint t snap1;
  let ev_mid = J.Ev_block (obs_fixture 2) in
  J.append t ev_mid;
  let snap2 = { J.s_cursor = 2; s_entries = [] } in
  J.checkpoint t snap2;
  let ev_late = J.Ev_block (obs_fixture 3) in
  J.append t ev_late;
  (* flip one bit in the newest checkpoint: its frame digest must
     refuse the whole file, and recovery must fall back a generation *)
  let ckpt2 = Filename.concat jdir "ckpt-000000002.ethj" in
  Alcotest.(check bool) "newest checkpoint exists" true
    (Sys.file_exists ckpt2);
  let fd = Unix.openfile ckpt2 [ Unix.O_RDWR ] 0 in
  let pos = 25 in
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  let b = Bytes.create 1 in
  ignore (Unix.read fd b 0 1);
  Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0x10));
  ignore (Unix.lseek fd pos Unix.SEEK_SET);
  ignore (Unix.write fd b 0 1);
  Unix.close fd;
  let _, r = J.recover ~dir:jdir in
  Alcotest.(check bool) "fallback reported" true r.J.r_checkpoint_fallback;
  (match r.J.r_snapshot with
  | Some s -> Alcotest.(check int) "previous generation served" 1 s.J.s_cursor
  | None -> Alcotest.fail "fallback generation not recovered");
  (* both generations' journals replay: nothing between checkpoint 1
     and the crash is lost *)
  check_events "both wal generations replayed" [ ev_mid; ev_late ]
    r.J.r_events;
  (* the corrupt file is gone; a second recovery no longer reports a
     fallback (idempotence) *)
  Alcotest.(check bool) "corrupt checkpoint deleted" false
    (Sys.file_exists ckpt2);
  let _, r2 = J.recover ~dir:jdir in
  Alcotest.(check bool) "second recovery clean" false
    r2.J.r_checkpoint_fallback;
  check_events "second recovery same events" [ ev_mid; ev_late ]
    r2.J.r_events

(* ---------- index layer ---------- *)

let test_close_recover_zero_reanalysis () =
  let jdir = temp_dir () in
  let net, boss = funded "jr-roundtrip" in
  let idx = Idx.recover ~journal_dir:jdir net in
  let addrs = Array.init 3 (fun i -> deploy_tag net boss (800 + i)) in
  Idx.drain idx;
  let before = Idx.contents idx in
  Idx.close idx;
  (* recover onto a fresh chain: the journal alone must carry every
     verdict (the cursor is ahead of the empty chain, so nothing
     replays from the chain side) *)
  let net2 = T.create () in
  let idx2 = Idx.recover ~journal_dir:jdir net2 in
  let st = Idx.stats idx2 in
  Alcotest.(check int) "all verdicts recovered" 3
    (int_of_float (get st "index_recovered_verdicts"));
  Alcotest.(check int) "zero re-analyses" 0
    (int_of_float (get st "index_analyses"));
  Array.iter
    (fun a ->
      match Idx.lookup idx2 a with
      | Idx.Indexed v ->
          Alcotest.(check bool) "recovered verdict clean" true
            (v.Idx.v_result.P.error = None)
      | _ -> Alcotest.fail "verdict lost across close/recover")
    addrs;
  List.iter2
    (fun (a, c, r) (a', c', r') ->
      Alcotest.(check bool) "same address" true (U.equal a a');
      Alcotest.(check bool) "same bytecode" true (String.equal c c');
      Alcotest.(check bool) "same verdict" true
        (normalize r = normalize r'))
    before (Idx.contents idx2);
  Idx.close idx2

let test_outage_reanalyzes_only_dirty () =
  let jdir = temp_dir () in
  let net, boss = funded "jr-outage" in
  P.cache_clear ();
  let idx = Idx.recover ~journal_dir:jdir net in
  let a = deploy_tag net boss 900 in
  let _b = deploy_tag net boss 901 in
  let _c = deploy_tag net boss 902 in
  Idx.drain idx;
  (* outage: the index stops observing (detach, not close — no final
     checkpoint, like a crash), and the chain moves on without it *)
  Idx.detach idx;
  let next = T.account_of_seed "jr-outage-next" in
  T.fund_account net next (U.of_string "0xffffffff");
  Alcotest.(check bool) "rotation during outage succeeded" true
    (T.succeeded (T.call_fn net ~from:boss ~to_:a "setOwner(address)" [ next ]));
  let d = deploy_tag net boss 903 in
  let fe0 = (P.frontend_cache_stats ()).Ethainter_core.Cache.misses in
  let idx2 = Idx.recover ~journal_dir:jdir net in
  Idx.drain idx2;
  let st = Idx.stats idx2 in
  (* exactly the dirty set re-analyzed: the rotated contract plus the
     new deployment; the two clean contracts came back from the
     journal untouched *)
  Alcotest.(check int) "three verdicts recovered, not recomputed" 3
    (int_of_float (get st "index_recovered_verdicts"));
  Alcotest.(check int) "exactly 2 re-analyses (dirty + new)" 2
    (int_of_float (get st "index_analyses"));
  (* front-end recomputation only for the genuinely new bytecode *)
  let fe1 = (P.frontend_cache_stats ()).Ethainter_core.Cache.misses in
  Alcotest.(check int) "one front-end miss (the new contract)" 1 (fe1 - fe0);
  (match Idx.lookup idx2 d with
  | Idx.Indexed _ -> ()
  | _ -> Alcotest.fail "outage-window deployment not indexed");
  (* and the recovered view equals a batch sweep of the final chain *)
  let live = T.live_contracts net in
  let batch =
    List.map
      (fun (_, code) -> S.analyze_request (P.request (P.Runtime code)))
      live
  in
  List.iter2
    (fun (ia, ic, ir) ((la, lc), br) ->
      Alcotest.(check bool) "same address" true (U.equal ia la);
      Alcotest.(check bool) "same bytecode" true (String.equal ic lc);
      Alcotest.(check bool) "incremental == batch after recovery" true
        (normalize ir = normalize br))
    (Idx.contents idx2)
    (List.combine live batch);
  Idx.close idx2

(* ---------- quarantine ---------- *)

let test_quarantine_breaker_unit () =
  S.Quarantine.clear ();
  let k = "poison" in
  let now = 1000.0 in
  Alcotest.(check bool) "fresh key admitted" true
    (S.Quarantine.check ~now k = S.Quarantine.Admit);
  S.Quarantine.record ~now k ~ok:false;
  S.Quarantine.record ~now k ~ok:false;
  Alcotest.(check bool) "below threshold still admitted" true
    (S.Quarantine.check ~now k = S.Quarantine.Admit);
  Alcotest.(check int) "two failures on record" 2 (S.Quarantine.failures k);
  S.Quarantine.record ~now k ~ok:false;
  (match S.Quarantine.check ~now k with
  | S.Quarantine.Reject { r_failures; r_retry_in_s } ->
      Alcotest.(check int) "threshold failures" S.Quarantine.threshold
        r_failures;
      Alcotest.(check bool) "positive backoff" true (r_retry_in_s > 0.0)
  | S.Quarantine.Admit -> Alcotest.fail "breaker did not open at threshold");
  Alcotest.(check bool) "is_open concurs" true
    (S.Quarantine.is_open ~now k);
  (* first trip backs off 0.25 s: closed again just past it *)
  let later = now +. 0.3 in
  Alcotest.(check bool) "backoff expired -> closed" false
    (S.Quarantine.is_open ~now:later k);
  Alcotest.(check bool) "probe admitted" true
    (S.Quarantine.check ~now:later k = S.Quarantine.Admit);
  (* a failed probe re-opens with doubled backoff *)
  S.Quarantine.record ~now:later k ~ok:false;
  Alcotest.(check bool) "re-opened" true (S.Quarantine.is_open ~now:later k);
  Alcotest.(check bool) "0.5 s backoff: still open at +0.3" true
    (S.Quarantine.is_open ~now:(later +. 0.3) k);
  Alcotest.(check bool) "closed past doubled backoff" false
    (S.Quarantine.is_open ~now:(later +. 0.6) k);
  (* success closes and forgets *)
  S.Quarantine.record ~now:(later +. 0.6) k ~ok:true;
  Alcotest.(check int) "forgotten after success" 0 (S.Quarantine.failures k);
  Alcotest.(check bool) "admitted after success" true
    (S.Quarantine.check ~now:(later +. 0.6) k = S.Quarantine.Admit);
  S.Quarantine.clear ()

let test_quarantine_in_index () =
  S.Quarantine.clear ();
  let net, boss = funded "jr-quarantine" in
  let idx = Idx.create net in
  let a = deploy_tag net boss 950 in
  Idx.drain idx;
  let code =
    match
      List.find_opt (fun (addr, _) -> U.equal addr a) (T.live_contracts net)
    with
    | Some (_, c) -> c
    | None -> Alcotest.fail "deployed contract missing from the chain"
  in
  (* Trip the breaker on this runtime bytecode directly — three
     consecutive failures, exactly what three crashed/timed-out
     analyses would have reported. (Fault-injected failures only fire
     at deadline poll sites, which this tiny contract's analysis never
     reaches, so the deterministic route is to feed the breaker the
     outcomes itself; the "3 real failures park the entry" epilogue is
     covered by the unit test above.) *)
  S.Quarantine.record code ~ok:false;
  S.Quarantine.record code ~ok:false;
  S.Quarantine.record code ~ok:false;
  (* a write to [owner] dirties the entry; the re-analysis job hits
     the open breaker and parks it as Quarantined without burning any
     pool time *)
  let next = T.account_of_seed "q-owner-0" in
  ignore (T.call_fn net ~from:boss ~to_:a "setOwner(address)" [ next ]);
  Idx.drain idx;
  (match Idx.lookup idx a with
  | Idx.Quarantined n ->
      Alcotest.(check bool) "threshold consecutive failures" true
        (n >= S.Quarantine.threshold)
  | st ->
      Alcotest.failf "expected Quarantined, got %s"
        (match st with
        | Idx.Indexed _ -> "Indexed"
        | Idx.Pending _ -> "Pending"
        | Idx.Destroyed -> "Destroyed"
        | Idx.Unknown -> "Unknown"
        | Idx.Quarantined _ -> "Quarantined"));
  let st = Idx.stats idx in
  Alcotest.(check int) "one entry parked" 1
    (int_of_float (get st "index_quarantined"));
  let analyses0 = int_of_float (get st "index_analyses") in
  (* same bytecode at a new address: the breaker short-circuits the
     job before any analysis runs *)
  let a2 = deploy_tag net boss 950 in
  Idx.drain idx;
  let st2 = Idx.stats idx in
  Alcotest.(check bool) "second instance parked too" true
    (match Idx.lookup idx a2 with Idx.Quarantined _ -> true | _ -> false);
  Alcotest.(check int) "job short-circuited, not analyzed" analyses0
    (int_of_float (get st2 "index_analyses"));
  Alcotest.(check bool) "drop counted" true
    (get st2 "index_quarantine_drops" >= 1.0);
  (* after the backoff (0.25 s on a first trip) the next sealed block
     queues probe jobs; with no failures injected the probes succeed,
     close the breaker, and both instances return to Indexed *)
  Thread.delay 0.3;
  ignore (deploy_tag net boss 951);
  Idx.drain idx;
  let st3 = Idx.stats idx in
  Alcotest.(check bool) "probe re-analysis attempted" true
    (get st3 "index_quarantine_probes" >= 1.0);
  Alcotest.(check int) "nothing left quarantined" 0
    (int_of_float (get st3 "index_quarantined"));
  Alcotest.(check bool) "probed entry re-indexed" true
    (match Idx.lookup idx a with Idx.Indexed _ -> true | _ -> false);
  Idx.detach idx;
  S.Quarantine.clear ()

let () =
  Alcotest.run "journal"
    [ (* fork first: no pools/domains exist yet in this process *)
      ( "kill-restart",
        [ Alcotest.test_case "kill -9 mid-stream == never crashed" `Quick
            test_kill_and_restart ] );
      ( "journal",
        [ Alcotest.test_case "fresh dir, close, zero-replay recover" `Quick
            test_fresh_then_close_roundtrip;
          Alcotest.test_case "uncheckpointed appends replay" `Quick
            test_appends_without_checkpoint_replay;
          Alcotest.test_case "torn tail truncated, appends resume" `Quick
            test_torn_tail_truncated;
          Alcotest.test_case "bit-flipped checkpoint falls back" `Quick
            test_corrupt_checkpoint_falls_back ] );
      ( "recovery",
        [ Alcotest.test_case "close/recover: zero re-analysis" `Quick
            test_close_recover_zero_reanalysis;
          Alcotest.test_case "outage re-analyzes only the dirty set" `Quick
            test_outage_reanalyzes_only_dirty ] );
      ( "quarantine",
        [ Alcotest.test_case "breaker unit semantics" `Quick
            test_quarantine_breaker_unit;
          Alcotest.test_case "poison pill parks in the index" `Quick
            test_quarantine_in_index ] ) ]
