(* Ethainter-Kill tests: selector harvesting, the escalation sweep,
   trace-verified destruction, and the no-public-entry giveup path. *)

module U = Ethainter_word.Uint256
module T = Ethainter_chain.Testnet
module K = Ethainter_kill.Kill
module P = Ethainter_core.Pipeline

let setup src =
  let net = T.create () in
  let deployer = T.account_of_seed "deployer" in
  let attacker = T.account_of_seed "attacker" in
  T.fund_account net deployer (U.of_string "1000000000000000000");
  T.fund_account net attacker (U.of_string "1000000000000000000");
  let r = T.deploy net ~from:deployer ~value:(U.of_int 1000)
      (Ethainter_minisol.Codegen.compile_source src) in
  let victim = match r.T.created with Some a -> a | None -> assert false in
  let runtime = Ethainter_evm.State.code (T.state net) victim in
  let reports = (P.run (P.request (P.Runtime runtime))).P.reports in
  (net, attacker, victim, reports)

let test_harvest_selectors () =
  let src = {|
contract C {
  uint256 a;
  function first() public { a = 1; }
  function second(uint256 x) public { a = x; }
  function hidden() private { a = 3; }
}|} in
  let runtime = Ethainter_minisol.Codegen.compile_source_runtime src in
  let p = Ethainter_tac.Decomp.decompile runtime in
  let sels = K.harvest_selectors p in
  let expect name =
    U.of_bytes (Ethainter_crypto.Keccak.selector name)
  in
  Alcotest.(check bool) "first() found" true
    (List.exists (U.equal (expect "first()")) sels);
  Alcotest.(check bool) "second(uint256) found" true
    (List.exists (U.equal (expect "second(uint256)")) sels);
  Alcotest.(check bool) "private not in dispatcher" false
    (List.exists (U.equal (expect "hidden()")) sels)

let test_kill_simple () =
  let net, attacker, victim, reports = setup {|
contract C {
  address b;
  constructor() { b = msg.sender; }
  function kill() public { selfdestruct(b); }
}|} in
  let a = K.attack net ~attacker ~victim reports in
  Alcotest.(check bool) "destroyed" true (a.K.a_outcome = K.Destroyed);
  Alcotest.(check bool) "gone from state" false (T.is_alive net victim)

let test_kill_composite_victim () =
  let net, attacker, victim, reports = setup {|
contract Victim {
  mapping(address => bool) admins;
  mapping(address => bool) users;
  address owner;
  modifier onlyAdmins { require(admins[msg.sender]); _; }
  modifier onlyUsers { require(users[msg.sender]); _; }
  constructor() { owner = msg.sender; }
  function registerSelf() public { users[msg.sender] = true; }
  function referUser(address user) public onlyUsers { users[user] = true; }
  function referAdmin(address adm) public onlyUsers { admins[adm] = true; }
  function changeOwner(address o) public onlyAdmins { owner = o; }
  function kill() public onlyAdmins { selfdestruct(owner); }
}|} in
  let before = Ethainter_evm.State.balance (T.state net) attacker in
  let a = K.attack net ~attacker ~victim reports in
  Alcotest.(check bool) "composite kill succeeds" true
    (a.K.a_outcome = K.Destroyed);
  (* the balance flowed to the attacker (owner was changed to them) *)
  let after = Ethainter_evm.State.balance (T.state net) attacker in
  Alcotest.(check bool) "funds captured" true (U.gt after before)

let test_kill_fails_on_safe () =
  let net, attacker, victim, _reports = setup {|
contract C {
  address owner;
  constructor() { owner = msg.sender; }
  function kill() public { require(msg.sender == owner); selfdestruct(owner); }
}|} in
  (* force an attempt even though Ethainter produced no reports *)
  let fake_report =
    Ethainter_core.Vulns.
      { r_kind = AccessibleSelfdestruct; r_pc = 0; r_block = 0;
        r_orphan = false; r_composite = false; r_note = "" }
  in
  let a = K.attack net ~attacker ~victim [ fake_report ] in
  Alcotest.(check bool) "not exploited" true (a.K.a_outcome = K.NotExploited);
  Alcotest.(check bool) "still alive" true (T.is_alive net victim)

let test_kill_no_public_entry () =
  let net, attacker, victim, reports = setup {|
contract C {
  address owner;
  uint256 n;
  constructor() { owner = msg.sender; }
  function bump() public { n = n + 1; }
  function escape() private { selfdestruct(owner); }
}|} in
  Alcotest.(check bool) "analysis flagged the orphan" true (reports <> []);
  let a = K.attack net ~attacker ~victim reports in
  Alcotest.(check bool) "kill gives up: no public entry" true
    (a.K.a_outcome = K.NoPublicEntry);
  Alcotest.(check int) "no transactions wasted" 0 a.K.a_txs_sent

let test_kill_nothing_to_do () =
  let net, attacker, victim, _ = setup {|
contract C { function m(address d) public { delegatecall(d); } }|} in
  (* delegatecall reports are not supported by Kill (as in the paper) *)
  let reports =
    (P.run (P.request (P.Runtime (Ethainter_evm.State.code (T.state net) victim)))).P.reports
  in
  let a = K.attack net ~attacker ~victim reports in
  Alcotest.(check bool) "unsupported kind" true (a.K.a_outcome = K.NothingToDo)

let test_campaign_stats () =
  let net = T.create () in
  let deployer = T.account_of_seed "deployer" in
  let attacker = T.account_of_seed "attacker" in
  T.fund_account net deployer (U.of_string "1000000000000000000");
  T.fund_account net attacker (U.of_string "1000000000000000000");
  let deploy src =
    let r = T.deploy net ~from:deployer
        (Ethainter_minisol.Codegen.compile_source src) in
    match r.T.created with Some a -> a | None -> assert false
  in
  let killable = deploy {|
contract A { address b; constructor() { b = msg.sender; }
  function kill() public { selfdestruct(b); } }|} in
  let safe = deploy {|
contract B { address o; constructor() { o = msg.sender; }
  function kill() public { require(msg.sender == o); selfdestruct(o); } }|} in
  let reports_of addr =
    (P.run (P.request (P.Runtime (Ethainter_evm.State.code (T.state net) addr)))).P.reports
  in
  let fake =
    Ethainter_core.Vulns.
      { r_kind = AccessibleSelfdestruct; r_pc = 0; r_block = 0;
        r_orphan = false; r_composite = false; r_note = "" }
  in
  let stats, attempts =
    K.campaign net ~attacker
      [ (killable, reports_of killable); (safe, [ fake ]) ]
  in
  Alcotest.(check int) "flagged" 2 stats.K.flagged;
  Alcotest.(check int) "destroyed" 1 stats.K.destroyed;
  Alcotest.(check int) "not exploited" 1 stats.K.not_exploited;
  Alcotest.(check int) "attempts recorded" 2 (List.length attempts)

let () =
  Alcotest.run "kill"
    [ ( "kill",
        [ Alcotest.test_case "selector harvest" `Quick test_harvest_selectors;
          Alcotest.test_case "simple kill" `Quick test_kill_simple;
          Alcotest.test_case "composite kill (§2)" `Quick
            test_kill_composite_victim;
          Alcotest.test_case "safe survives" `Quick test_kill_fails_on_safe;
          Alcotest.test_case "no public entry" `Quick
            test_kill_no_public_entry;
          Alcotest.test_case "unsupported kinds" `Quick
            test_kill_nothing_to_do;
          Alcotest.test_case "campaign stats" `Quick test_campaign_stats ] ) ]
