(* Tests for the phase-split cache (PR 3): the config-independent
   front end (decompile + facts) cached separately from the
   config-dependent back end (fixpoint + detectors), plus the
   correctness fixes riding along — timed-out results keeping their
   measurements, the disk-tier mkdir race, budget-rejected entries not
   counted as hits, and the scheduler preserving worker backtraces. *)

module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module C = Ethainter_core.Config
module Cache = Ethainter_core.Cache
module G = Ethainter_corpus.Generator

(* identical up to wall-clock: everything but elapsed_s *)
let normalize (r : P.result) = { r with P.elapsed_s = 0.0 }

let compile = Ethainter_minisol.Codegen.compile_source_runtime

let src_victim = {|
contract Victim {
  mapping(address => bool) admins;
  address owner;
  constructor() { owner = msg.sender; }
  function refer(address a) public { admins[a] = true; }
  function claim(address who) public { require(admins[msg.sender]); owner = who; }
  function kill() public {
    require(msg.sender == owner);
    selfdestruct(owner);
  }
}|}

(* A fresh private temp directory path per call; [mk] controls whether
   the directory itself is created (the mkdir-race test wants it
   absent). *)
let temp_dir =
  let counter = ref 0 in
  fun ?(mk = true) () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ethainter_phase_test_%d_%d" (Unix.getpid ())
           !counter)
    in
    if mk then
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let with_pipeline_cache ?dir f =
  let was_enabled = P.cache_enabled () in
  P.set_cache_enabled true;
  P.set_cache_dir dir;  (* also resets both memory tiers *)
  P.cache_clear ();
  Fun.protect
    ~finally:(fun () ->
      P.set_cache_enabled was_enabled;
      P.set_cache_dir None)
    f

let all_configs =
  [ ("default", C.default);
    ("no-storage", C.no_storage_model);
    ("no-guards", C.no_guard_model);
    ("conservative", C.conservative) ]

(* ---------- front-end phase + codec ---------- *)

let test_frontend_codec_roundtrip () =
  let runtime = compile src_victim in
  match P.compute_frontend ~timeout_s:120.0 runtime with
  | Error _ -> Alcotest.fail "front end unexpectedly timed out"
  | Ok fe ->
      Alcotest.(check bool) "facts computed" true (Result.is_ok fe.P.fe_facts);
      Alcotest.(check bool) "has statements" true (fe.P.fe_tac_loc > 0);
      (match P.decode_frontend (P.encode_frontend fe) with
      | None -> Alcotest.fail "decode of encode failed"
      | Some fe' ->
          Alcotest.(check int) "tac_loc survives" fe.P.fe_tac_loc
            fe'.P.fe_tac_loc;
          Alcotest.(check int) "blocks survive" fe.P.fe_blocks fe'.P.fe_blocks;
          (* the decoded artifact must drive the back end to the same
             answer as the original, under every ablation config *)
          List.iter
            (fun (name, cfg) ->
              Alcotest.(check bool)
                ("backend agrees on decoded artifact: " ^ name) true
                (normalize (P.backend ~cfg fe)
                = normalize (P.backend ~cfg fe')))
            all_configs)

let test_frontend_codec_rejects_garbage () =
  let runtime = compile src_victim in
  let fe =
    match P.compute_frontend ~timeout_s:120.0 runtime with
    | Ok fe -> fe
    | Error _ -> Alcotest.fail "front end timed out"
  in
  let good = P.encode_frontend fe in
  Alcotest.(check bool) "sanity: good decodes" true
    (P.decode_frontend good <> None);
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
    Bytes.to_string b
  in
  let bad =
    [ ""; "garbage"; "ethainter.frontend.v999 x 0 0\n";
      (* truncated payload: header length/digest no longer match *)
      String.sub good 0 (String.length good - 7);
      (* trailing junk *)
      good ^ "extra";
      (* a flipped payload byte must fail the digest check before any
         unmarshalling is attempted *)
      flip good (String.length good - 1) ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "corrupt artifact rejected" true
        (P.decode_frontend s = None))
    bad

let test_frontend_error_artifact () =
  (* a deterministic front-end failure is an artifact like any other:
     it caches, and the back end surfaces it with the phase stats that
     were completed *)
  with_pipeline_cache (fun () ->
      let garbage = "\xfe\x01\x02garbage" in
      let r1 = P.run (P.request (P.Runtime garbage)) in
      Alcotest.(check int) "front-end miss on first sight" 1
        (P.frontend_cache_stats ()).Cache.misses;
      (* a different config misses the back-end result cache but must
         reuse the front-end artifact *)
      let r2 = P.run (P.request ~cfg:C.no_guard_model (P.Runtime garbage)) in
      Alcotest.(check int) "front-end hit under another config" 1
        (P.frontend_cache_stats ()).Cache.hits;
      Alcotest.(check bool) "identical outcome" true
        (normalize r1 = normalize r2));
  (* the Error-carrying artifact shape itself, via the exposed phase *)
  let fe =
    { P.fe_facts = Error (P.Decompile, "Decomp.Asm_error");
      fe_tac_loc = 7; fe_blocks = 2; fe_elapsed_s = 0.25 }
  in
  let r = P.backend ~cfg:C.default fe in
  Alcotest.(check (option string)) "error surfaced"
    (Some "Decomp.Asm_error") r.P.error;
  Alcotest.(check bool) "error kind surfaced" true
    (r.P.error_kind = Some P.Decompile);
  Alcotest.(check int) "completed stats kept" 7 r.P.tac_loc;
  Alcotest.(check bool) "front-end cost charged" true
    (abs_float (r.P.elapsed_s -. 0.25) < 1e-9);
  (* and it round-trips through the codec *)
  match P.decode_frontend (P.encode_frontend fe) with
  | Some fe' -> Alcotest.(check bool) "error artifact roundtrips" true
                  (fe = fe')
  | None -> Alcotest.fail "error artifact failed to decode"

(* ---------- cross-config reuse ---------- *)

let test_four_config_sweep_decompiles_once () =
  (* the acceptance criterion: the 4-config ablation sweep performs
     exactly one decompilation+facts pass per contract *)
  let corpus = G.mainnet ~seed:11 ~size:40 () in
  let runtimes =
    List.sort_uniq compare
      (List.map (fun (i : G.instance) -> i.G.i_runtime) corpus)
  in
  let n = List.length runtimes in
  with_pipeline_cache (fun () ->
      List.iter
        (fun (_, cfg) -> ignore (S.analyze_corpus ~cfg ~workers:4 runtimes))
        all_configs;
      let fe = P.frontend_cache_stats () in
      let be = P.cache_stats () in
      Alcotest.(check int) "one front-end pass per distinct contract" n
        fe.Cache.misses;
      Alcotest.(check int) "three front-end reuses per contract" (3 * n)
        fe.Cache.hits;
      Alcotest.(check int) "one back-end pass per contract x config" (4 * n)
        be.Cache.misses)

let test_differential_all_configs () =
  (* phase-split results must be byte-identical to uncached runs for
     all four ablation configs, cold and warm *)
  let corpus = G.mainnet ~seed:21 ~size:30 () in
  let runtimes =
    List.map (fun (i : G.instance) -> i.G.i_runtime) corpus
    @ [ ""; "\xfe\x01\x02garbage" ]
  in
  let uncached =
    P.set_cache_enabled false;
    Fun.protect
      ~finally:(fun () -> P.set_cache_enabled true)
      (fun () ->
        List.map
          (fun (_, cfg) -> S.analyze_corpus ~cfg ~workers:4 runtimes)
          all_configs)
  in
  with_pipeline_cache (fun () ->
      let sweep () =
        List.map
          (fun (_, cfg) -> S.analyze_corpus ~cfg ~workers:4 runtimes)
          all_configs
      in
      let cold = sweep () in
      let warm = sweep () in
      List.iteri
        (fun ci (cfg_cold, (cfg_warm, cfg_unc)) ->
          let name = fst (List.nth all_configs ci) in
          List.iter2
            (fun a b ->
              Alcotest.(check bool) ("cold == uncached: " ^ name) true
                (normalize a = normalize b))
            cfg_cold cfg_unc;
          List.iter2
            (fun a b ->
              Alcotest.(check bool) ("warm == uncached: " ^ name) true
                (normalize a = normalize b))
            cfg_warm cfg_unc)
        (List.combine cold (List.combine warm uncached)))

let test_disk_tier_cold_warm_matrix () =
  (* cold/warm disk-tier matrix: a fresh process (simulated by
     resetting the memory tiers) must answer from disk, for both
     phases, under every config — and still match an uncached run *)
  let runtimes =
    [ compile src_victim;
      compile {|
contract Token {
  mapping(address => uint) balances;
  function transfer(address to, uint amount) public {
    require(balances[msg.sender] >= amount);
    balances[msg.sender] = balances[msg.sender] - amount;
    balances[to] = balances[to] + amount;
  }
}|} ]
  in
  let uncached =
    P.set_cache_enabled false;
    Fun.protect
      ~finally:(fun () -> P.set_cache_enabled true)
      (fun () ->
        List.map
          (fun (_, cfg) -> S.analyze_corpus ~cfg runtimes)
          all_configs)
  in
  let dir = temp_dir () in
  with_pipeline_cache ~dir (fun () ->
      let sweep () =
        List.map
          (fun (_, cfg) -> S.analyze_corpus ~cfg runtimes)
          all_configs
      in
      ignore (sweep ());
      Alcotest.(check bool) "front-end artifacts persisted" true
        ((P.frontend_cache_stats ()).Cache.disk_writes >= List.length runtimes);
      Alcotest.(check bool) "results persisted" true
        ((P.cache_stats ()).Cache.disk_writes
        >= List.length runtimes * List.length all_configs);
      (* "new process": memory tiers emptied, disk entries remain *)
      P.cache_clear ();
      let warm_disk = sweep () in
      let fe = P.frontend_cache_stats () in
      let be = P.cache_stats () in
      Alcotest.(check int) "no front-end recomputation from disk" 0
        fe.Cache.misses;
      Alcotest.(check int) "no back-end recomputation from disk" 0
        be.Cache.misses;
      Alcotest.(check bool) "back end answered from disk" true
        (be.Cache.disk_hits >= List.length runtimes);
      List.iter2
        (fun cfg_res cfg_unc ->
          List.iter2
            (fun a b ->
              Alcotest.(check bool) "disk-warm == uncached" true
                (normalize a = normalize b))
            cfg_res cfg_unc)
        warm_disk uncached)

(* ---------- satellite regressions ---------- *)

(* A contract whose fixpoint needs ~one round per escalation level:
   level k's guard trusts the mapping written by level k-1, so the
   chain-escalation loop (the paper's §2 user → admin → owner pattern)
   propagates one level per round — long enough for a deadline to
   expire mid-fixpoint. *)
let chain_escalation_src n =
  let b = Buffer.create 4096 in
  Buffer.add_string b "contract Chain {\n";
  for k = 0 to n do
    Printf.bprintf b "  mapping(address => bool) l%d;\n" k
  done;
  Buffer.add_string b "  address owner;\n";
  Buffer.add_string b
    "  function enter(address a) public { l0[a] = true; }\n";
  for k = 1 to n do
    Printf.bprintf b
      "  function step%d(address a) public { require(l%d[msg.sender]); l%d[a] = true; }\n"
      k (k - 1) k
  done;
  Printf.bprintf b
    "  function kill() public { require(l%d[msg.sender]); selfdestruct(owner); }\n"
    n;
  Buffer.add_string b "}";
  Buffer.contents b

let test_timeout_keeps_measurement () =
  (* a timed-out result used to come back as empty_result: zero
     elapsed_s and no phase stats. With the preemptive deadline a zero
     budget may now cut decompilation itself mid-loop, so what every
     timed-out result must still carry is the *real* elapsed time and
     the Timeout classification ... *)
  P.set_cache_enabled false;
  Fun.protect
    ~finally:(fun () -> P.set_cache_enabled true)
    (fun () ->
      let runtime = compile src_victim in
      let r = P.run (P.request ~timeout_s:0.0 (P.Runtime runtime)) in
      Alcotest.(check bool) "times out" true r.P.timed_out;
      Alcotest.(check bool) "elapsed time reported" true (r.P.elapsed_s > 0.0);
      Alcotest.(check bool) "classified Timeout" true
        (r.P.error_kind = Some P.Timeout);
      (* ... and a back-end expiry on a completed front end must keep
         the front end's phase stats *)
      let fe =
        match
          P.compute_frontend ~timeout_s:120.0
            (compile (chain_escalation_src 40))
        with
        | Ok fe -> { fe with P.fe_elapsed_s = 0.0 }
        | Error _ -> Alcotest.fail "front end unexpectedly timed out"
      in
      let r = P.backend ~cfg:C.default ~timeout_s:1e-6 fe in
      Alcotest.(check bool) "backend times out mid-fixpoint" true
        r.P.timed_out;
      Alcotest.(check bool) "elapsed time reported" true (r.P.elapsed_s > 0.0);
      Alcotest.(check int) "decompiled stats kept: tac_loc" fe.P.fe_tac_loc
        r.P.tac_loc;
      Alcotest.(check int) "decompiled stats kept: blocks" fe.P.fe_blocks
        r.P.blocks)

let test_mkdir_race_both_writers_persist () =
  (* two caches racing to create the same missing directory: the
     mkdir loser's EEXIST must not abort its write *)
  for _ = 1 to 10 do
    let dir = temp_dir ~mk:false () in
    Alcotest.(check bool) "dir starts absent" false (Sys.file_exists dir);
    let mk_cache () =
      Cache.create ~dir
        ~encode:(fun v -> "S1\n" ^ v)
        ~decode:(fun s ->
          if String.length s >= 3 && String.sub s 0 3 = "S1\n" then
            Some (String.sub s 3 (String.length s - 3))
          else None)
        ()
    in
    let gate = Atomic.make 0 in
    let writer key =
      Domain.spawn (fun () ->
          let c = mk_cache () in
          Atomic.incr gate;
          while Atomic.get gate < 2 do Domain.cpu_relax () done;
          Cache.add c key ("v-" ^ key);
          (Cache.stats c).Cache.disk_writes)
    in
    let d1 = writer "aaaa" and d2 = writer "bbbb" in
    let w1 = Domain.join d1 and w2 = Domain.join d2 in
    Alcotest.(check int) "first writer persisted" 1 w1;
    Alcotest.(check int) "second writer persisted" 1 w2;
    Alcotest.(check bool) "first entry on disk" true
      (Sys.file_exists (Filename.concat dir "aaaa.cache"));
    Alcotest.(check bool) "second entry on disk" true
      (Sys.file_exists (Filename.concat dir "bbbb.cache"))
  done

let test_budget_rejection_not_a_hit () =
  with_pipeline_cache (fun () ->
      let runtime = compile src_victim in
      let full = P.run (P.request (P.Runtime runtime)) in
      Alcotest.(check bool) "full run cached" true (not full.P.timed_out);
      let hits_before = (P.cache_stats ()).Cache.hits in
      (* entry exists, but a zero budget must refuse it and recompute *)
      let tight = P.run (P.request ~timeout_s:0.0 (P.Runtime runtime)) in
      Alcotest.(check bool) "tight budget times out" true tight.P.timed_out;
      let s = P.cache_stats () in
      Alcotest.(check int) "not counted as a hit" hits_before s.Cache.hits;
      Alcotest.(check bool) "counted as rejected" true (s.Cache.rejected >= 1);
      (* the generic find_valid contract, on a plain string cache *)
      let c =
        Cache.create
          ~encode:(fun v -> v)
          ~decode:(fun s -> Some s)
          ()
      in
      Cache.add c "k" "value";
      Alcotest.(check (option string)) "valid entry served" (Some "value")
        (Cache.find_valid c "k" ~valid:(fun _ -> true));
      Alcotest.(check (option string)) "invalid entry refused" None
        (Cache.find_valid c "k" ~valid:(fun _ -> false));
      let s = Cache.stats c in
      Alcotest.(check int) "one hit" 1 s.Cache.hits;
      Alcotest.(check int) "one rejection" 1 s.Cache.rejected;
      Alcotest.(check int) "no misses" 0 s.Cache.misses;
      (* the entry survives a rejection for laxer callers *)
      Alcotest.(check (option string)) "entry still present" (Some "value")
        (Cache.find c "k"))

exception Boom of int

let test_scheduler_preserves_backtrace () =
  Printexc.record_backtrace true;
  (* the worker's exception must come back as-is... *)
  (match S.map ~workers:2 (fun i -> if i = 3 then raise (Boom i) else i)
           [ 1; 2; 3; 4 ]
   with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 3 -> ());
  (* ...and the re-raise must carry the backtrace captured in the
     worker domain, not a fresh one from the caller's raise site:
     raise_with_backtrace leaves the recorded trace pointing into the
     worker's frames (run_pool/worker loop), which a bare [raise e]
     from the drain loop cannot *)
  (match S.map ~workers:1 (fun () -> raise (Boom 0)) [ () ] with
  | _ -> Alcotest.fail "expected Boom to propagate"
  | exception Boom 0 ->
      let bt = Printexc.get_backtrace () in
      Alcotest.(check bool) "backtrace mentions the scheduler pool" true
        (let mentions sub =
           let n = String.length bt and m = String.length sub in
           let rec go i =
             i + m <= n && (String.sub bt i m = sub || go (i + 1))
           in
           go 0
         in
         (* dev builds record frames; accept either the scheduler file
            or an empty trace on builds without debug info *)
         bt = "" || mentions "scheduler.ml"))

let () =
  Alcotest.run "phase-split"
    [ ( "frontend",
        [ Alcotest.test_case "codec roundtrip" `Quick
            test_frontend_codec_roundtrip;
          Alcotest.test_case "codec rejects garbage" `Quick
            test_frontend_codec_rejects_garbage;
          Alcotest.test_case "error artifacts" `Quick
            test_frontend_error_artifact ] );
      ( "cross-config",
        [ Alcotest.test_case "4-config sweep decompiles once" `Quick
            test_four_config_sweep_decompiles_once;
          Alcotest.test_case "differential: all configs" `Quick
            test_differential_all_configs;
          Alcotest.test_case "disk-tier cold/warm matrix" `Quick
            test_disk_tier_cold_warm_matrix ] );
      ( "regressions",
        [ Alcotest.test_case "timeout keeps measurement" `Quick
            test_timeout_keeps_measurement;
          Alcotest.test_case "mkdir race: both writers persist" `Quick
            test_mkdir_race_both_writers_persist;
          Alcotest.test_case "budget rejection is not a hit" `Quick
            test_budget_rejection_not_a_hit;
          Alcotest.test_case "worker backtrace preserved" `Quick
            test_scheduler_preserves_backtrace ] ) ]
