(* Serving test battery (PR 6): the ethainterd protocol and daemon
   core, in the tier-1 gate.

   What must hold:
   - the frame and message codecs roundtrip, and truncated / corrupt /
     oversized / random frames are rejected with a classified error —
     never a crash, never a bogus accept;
   - request/response works end-to-end over a socketpair, and N
     concurrent clients get responses byte-identical to calling
     Scheduler.analyze_request directly;
   - a full admission queue sheds load with the `overloaded` protocol
     error immediately (no hang, no unbounded queueing);
   - per-contract failures (malformed hex, deadline expiry) surface
     through the protocol with the PR 4 error_kind taxonomy intact;
   - caches stay warm across requests: a repeated request hits the
     back-end cache, adds no front-end miss and builds no new Datalog
     plan (asserted via the stats endpoint). *)

module P = Ethainter_core.Pipeline
module S = Ethainter_core.Scheduler
module C = Ethainter_core.Config
module Hex = Ethainter_word.Hex
module Frame = Ethainter_serve.Frame
module Proto = Ethainter_serve.Proto
module Server = Ethainter_serve.Server
module Client = Ethainter_serve.Client
module G = Ethainter_corpus.Generator

let normalize (r : P.result) = { r with P.elapsed_s = 0.0 }

(* Deterministic PRNG for the codec fuzzing — the suite must not
   depend on OCaml's Random across versions. *)
let rng_state = ref 0x2545F4914F6CDD1D
let rand_int bound =
  let x = !rng_state in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = x lxor (x lsl 17) in
  rng_state := x;
  (x land max_int) mod bound

let rand_bytes n = String.init n (fun _ -> Char.chr (rand_int 256))

(* A chain of n [JUMPDEST; PUSH3 next; JUMP] blocks (6 bytes each —
   PUSH3 so chains can address past 64 KiB). Decompiling it costs real
   work per block, which makes "slow contract" constructible: a chain
   whose unbounded runtime far exceeds a request's deadline occupies a
   worker for ~the deadline, deterministically. *)
let jump_chain n =
  let b = Buffer.create (6 * n) in
  for k = 0 to n - 1 do
    let target = if k = n - 1 then 0 else 6 * (k + 1) in
    Buffer.add_char b '\x5b';
    Buffer.add_char b '\x62';
    Buffer.add_char b (Char.chr ((target lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((target lsr 8) land 0xff));
    Buffer.add_char b (Char.chr (target land 0xff));
    Buffer.add_char b '\x56'
  done;
  Buffer.contents b

(* An in-process server wired to a socketpair client; tears everything
   down even on test failure. *)
let with_server ?workers ?(queue_depth = 64) ?default_timeout_s f =
  let server = Server.create ?workers ~queue_depth ?default_timeout_s () in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Thread.create (fun () -> Server.serve_connection server a) () in
  let client = Client.of_fd b in
  Fun.protect
    ~finally:(fun () ->
      Client.close client;
      (* join before closing [a]: serve_connection drains in-flight
         jobs and returns, and only then is the fd safe to close *)
      (try Thread.join reader with _ -> ());
      (try Unix.close a with _ -> ());
      Server.stop server)
    (fun () -> f server client)

let connect_client server =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Thread.create (fun () -> Server.serve_connection server a) () in
  (Client.of_fd b, a, reader)

let corpus_hexes ~seed ~size =
  let corpus = G.mainnet ~seed ~size () in
  List.sort_uniq compare
    (List.map (fun (i : G.instance) -> Hex.encode i.G.i_runtime) corpus)

(* ------------------------------------------------------------------ *)
(* Frame codec                                                         *)
(* ------------------------------------------------------------------ *)

let test_frame_roundtrip () =
  List.iter
    (fun (kind, id, payload) ->
      let s = Frame.encode ~kind ~id payload in
      match Frame.decode s ~pos:0 with
      | Ok (k, i, p, consumed) ->
          Alcotest.(check char) "kind" kind k;
          Alcotest.(check int) "id" id i;
          Alcotest.(check string) "payload" payload p;
          Alcotest.(check int) "consumed" (String.length s) consumed
      | Error e -> Alcotest.failf "roundtrip failed: %s" (Frame.error_to_string e))
    [ ('A', 0, "");
      ('R', 1, "hello");
      ('E', 0x7FFFFFFF, rand_bytes 1024);
      ('T', 42, String.make 100000 '\xff');
      ('P', 7, "\x00\x01\x02ETSF\x00") ];
  (* frames decode at any offset, and back-to-back *)
  let f1 = Frame.encode ~kind:'A' ~id:1 "one" in
  let f2 = Frame.encode ~kind:'B' ~id:2 "two" in
  (match Frame.decode ("junk" ^ f1 ^ f2) ~pos:4 with
  | Ok (k, _, p, consumed) ->
      Alcotest.(check char) "first kind" 'A' k;
      Alcotest.(check string) "first payload" "one" p;
      (match Frame.decode ("junk" ^ f1 ^ f2) ~pos:(4 + consumed) with
      | Ok (k2, _, p2, _) ->
          Alcotest.(check char) "second kind" 'B' k2;
          Alcotest.(check string) "second payload" "two" p2
      | Error e -> Alcotest.failf "second frame: %s" (Frame.error_to_string e))
  | Error e -> Alcotest.failf "offset decode: %s" (Frame.error_to_string e))

let test_frame_rejection () =
  let frame = Frame.encode ~kind:'A' ~id:123 (rand_bytes 256) in
  (* every strict prefix is Truncated *)
  for cut = 0 to String.length frame - 1 do
    match Frame.decode (String.sub frame 0 cut) ~pos:0 with
    | Error Frame.Truncated -> ()
    | Ok _ -> Alcotest.failf "prefix of %d bytes accepted" cut
    | Error e ->
        (* header-level corruption classifications only appear when the
           header itself is complete *)
        Alcotest.failf "prefix of %d bytes: %s (want truncated)" cut
          (Frame.error_to_string e)
  done;
  (* any single flipped bit anywhere in the frame is rejected *)
  let rejected = ref 0 in
  for _ = 1 to 500 do
    let i = rand_int (String.length frame) in
    let bit = rand_int 8 in
    let b = Bytes.of_string frame in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
    match Frame.decode (Bytes.to_string b) ~pos:0 with
    | Ok (k, id, p, _) ->
        (* the only acceptable accept is the identity (we flipped a
           bit, so this cannot happen) *)
        if not (k = 'A' && id = 123 && p = String.sub frame 22 256) then
          Alcotest.failf "corrupt frame accepted (byte %d bit %d)" i bit
    | Error _ -> incr rejected
  done;
  Alcotest.(check bool) "all corruptions rejected" true (!rejected = 500);
  (* oversized length fields are rejected from the header alone *)
  let b = Bytes.of_string (Frame.encode ~kind:'A' ~id:1 "xx") in
  Bytes.set_int32_be b 10 (Int32.of_int (Frame.max_payload + 1));
  (match Frame.decode (Bytes.to_string b) ~pos:0 with
  | Error (Frame.Oversized _) -> ()
  | _ -> Alcotest.fail "oversized length not rejected");
  (* encode refuses an oversized payload outright *)
  (match Frame.encode ~kind:'A' ~id:1 (String.make (Frame.max_payload + 1) 'x') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "oversized encode accepted");
  (* seeded random garbage never crashes and never accepts *)
  for _ = 1 to 2000 do
    let junk = rand_bytes (rand_int 64) in
    match Frame.decode junk ~pos:0 with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "random bytes decoded as a frame"
  done

(* ------------------------------------------------------------------ *)
(* Message codecs                                                      *)
(* ------------------------------------------------------------------ *)

let test_proto_roundtrip () =
  let reqs =
    [ { Proto.a_hex = "60006000f3"; a_cfg = C.default; a_timeout_s = 120.0 };
      { Proto.a_hex = ""; a_cfg = C.conservative; a_timeout_s = 0.25 };
      { Proto.a_hex = "0x60 00\nzz not-hex"; a_cfg = C.no_guard_model;
        a_timeout_s = 1e-3 } ]
  in
  List.iter
    (fun r ->
      match Proto.decode_analyze (Proto.encode_analyze r) with
      | Some r' ->
          Alcotest.(check string) "hex" r.Proto.a_hex r'.Proto.a_hex;
          Alcotest.(check bool) "cfg" true (r.Proto.a_cfg = r'.Proto.a_cfg);
          Alcotest.(check (float 0.0)) "timeout" r.Proto.a_timeout_s
            r'.Proto.a_timeout_s
      | None -> Alcotest.fail "analyze roundtrip failed")
    reqs;
  List.iter
    (fun e ->
      Alcotest.(check bool) "error roundtrip" true
        (Proto.decode_error (Proto.encode_error e) = Some e))
    [ Proto.Overloaded; Proto.Malformed ""; Proto.Malformed "multi\nline msg" ];
  let st =
    [ ("queue_depth", 3.0); ("latency_p99_ms", 12.345678901234);
      ("served_ok", 1e9) ]
  in
  Alcotest.(check bool) "stats roundtrip exact" true
    (Proto.decode_stats (Proto.encode_stats st) = Some st);
  (* config fingerprints roundtrip, and only canonical ones parse *)
  List.iter
    (fun cfg ->
      Alcotest.(check bool) "of_fingerprint inverse" true
        (C.of_fingerprint (C.fingerprint cfg) = Some cfg))
    [ C.default; C.no_storage_model; C.no_guard_model; C.conservative ];
  List.iter
    (fun bad ->
      Alcotest.(check bool) ("rejects " ^ bad) true
        (C.of_fingerprint bad = None))
    [ ""; "cfg:"; "cfg:g1.s1.c0"; "cfg:g2.s1.c0.r100"; "cfg:g1.s1.c0.r-1";
      "cfg:g1.s1.c0.r0100"; "cfg:g1.s1.c0.r100."; "g1.s1.c0.r100" ];
  (* garbage payloads are None, not exceptions *)
  for _ = 1 to 500 do
    let junk = rand_bytes (rand_int 200) in
    ignore (Proto.decode_analyze junk);
    ignore (Proto.decode_error junk);
    ignore (Proto.decode_stats junk)
  done

(* ------------------------------------------------------------------ *)
(* End-to-end over a socketpair                                        *)
(* ------------------------------------------------------------------ *)

let test_end_to_end () =
  P.cache_clear ();
  with_server ~workers:2 (fun _server client ->
      Alcotest.(check bool) "ping" true (Client.ping client);
      let hexes = corpus_hexes ~seed:61 ~size:12 in
      List.iter
        (fun hex ->
          let direct =
            S.analyze_request (P.request (P.Hex hex))
          in
          match Client.analyze client ~hex () with
          | Client.Result served ->
              Alcotest.(check bool) "served == direct" true
                (normalize served = normalize direct)
          | _ -> Alcotest.fail "expected a result response")
        hexes;
      (* stats endpoint answers and carries the serving counters *)
      let st = Client.stats client in
      let get k =
        match List.assoc_opt k st with
        | Some v -> v
        | None -> Alcotest.failf "stats missing %s" k
      in
      Alcotest.(check bool) "served_ok counted" true
        (get "served_ok" >= float_of_int (List.length hexes));
      Alcotest.(check bool) "latency recorded" true (get "latency_count" > 0.0);
      Alcotest.(check bool) "queue capacity reported" true
        (get "queue_capacity" = 64.0))

let test_concurrent_clients () =
  P.cache_clear ();
  let hexes = Array.of_list (corpus_hexes ~seed:62 ~size:30) in
  let n_hexes = Array.length hexes in
  (* ground truth first, via the scheduler directly *)
  let direct =
    Array.map
      (fun hex -> normalize (S.analyze_request (P.request (P.Hex hex))))
      hexes
  in
  with_server ~workers:4 (fun server _client ->
      let n_clients = 6 and per_client = 25 in
      let errors = Atomic.make 0 and checked = Atomic.make 0 in
      let run_client ci =
        let client, sfd, reader = connect_client server in
        (* interleave the corpus differently per client *)
        for k = 0 to per_client - 1 do
          let idx = (ci + (k * 7)) mod n_hexes in
          match Client.analyze client ~hex:hexes.(idx) () with
          | Client.Result served ->
              if normalize served = direct.(idx) then Atomic.incr checked
              else Atomic.incr errors
          | _ -> Atomic.incr errors
        done;
        Client.close client;
        (try Thread.join reader with _ -> ());
        try Unix.close sfd with _ -> ()
      in
      let threads = List.init n_clients (fun ci -> Thread.create run_client ci) in
      List.iter Thread.join threads;
      Alcotest.(check int) "no mismatches or protocol errors" 0
        (Atomic.get errors);
      Alcotest.(check int) "every response checked"
        (n_clients * per_client) (Atomic.get checked))

(* Pipelined requests on one connection: ids match even when responses
   complete out of order (two workers, first request much slower). *)
let test_pipelining_out_of_order () =
  P.cache_clear ();
  P.set_cache_enabled false;
  Fun.protect
    ~finally:(fun () -> P.set_cache_enabled true)
    (fun () ->
      with_server ~workers:2 (fun _server client ->
          (* a slow adversarial contract, then a trivial one *)
          let slow = Hex.encode (jump_chain 4000) in
          let quick = "60006000f3" in
          let id_slow =
            Client.send_analyze client ~timeout_s:10.0 ~hex:slow ()
          in
          let id_quick = Client.send_analyze client ~hex:quick () in
          (* ask for the quick one first: recv_for must stash nothing
             (quick finishes first) or stash the slow one — either way
             both match their ids *)
          (match Client.recv_for client id_quick with
          | Client.Result r ->
              Alcotest.(check bool) "quick ok" true (r.P.error = None)
          | _ -> Alcotest.fail "quick: expected result");
          match Client.recv_for client id_slow with
          | Client.Result r ->
              Alcotest.(check bool) "slow returned" true
                (r.P.tac_loc > 100 || r.P.timed_out)
          | _ -> Alcotest.fail "slow: expected result"))

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let test_queue_full_sheds () =
  P.cache_clear ();
  P.set_cache_enabled false;
  Fun.protect
    ~finally:(fun () -> P.set_cache_enabled true)
    (fun () ->
      (* one worker, queue of one: the third concurrent slow request —
         and everything after it — must be refused immediately *)
      with_server ~workers:1 ~queue_depth:1 (fun _server client ->
          (* ~300k blocks: unbounded decompile time is an order of
             magnitude over the budget, so the deadline — not the
             contract — decides how long each accepted request holds
             the single worker (~slow_budget each) *)
          let slow_hex = Hex.encode (jump_chain 300_000) in
          let slow_budget = 1.0 in
          let slow_ids =
            List.init 2 (fun _ ->
                Client.send_analyze client ~timeout_s:slow_budget
                  ~hex:slow_hex ())
          in
          (* give the reader thread a beat to enqueue both *)
          Thread.delay 0.15;
          let burst_ids =
            List.init 6 (fun _ ->
                Client.send_analyze client ~timeout_s:slow_budget
                  ~hex:slow_hex ())
          in
          let t_burst_sent = Unix.gettimeofday () in
          let shed = ref 0 in
          List.iter
            (fun id ->
              match Client.recv_for client id with
              | Client.Error Proto.Overloaded -> incr shed
              | Client.Result _ -> ()  (* a queue slot freed in time *)
              | _ -> Alcotest.fail "burst: unexpected response")
            burst_ids;
          let burst_wait_s = Unix.gettimeofday () -. t_burst_sent in
          Alcotest.(check bool) "some requests shed" true (!shed >= 4);
          (* with worker + queue slot held for ~slow_budget each, shed
             replies come from the reader thread at admission-control
             speed — if they queued instead, the wait would be several
             budgets long *)
          if !shed = 6 then
            Alcotest.(check bool)
              (Printf.sprintf "shed replies fast (%.2fs)" burst_wait_s)
              true
              (burst_wait_s < slow_budget);
          (* the accepted requests complete (timed out or analyzed),
             the connection never hangs *)
          List.iter
            (fun id ->
              match Client.recv_for client id with
              | Client.Result _ -> ()
              | _ -> Alcotest.fail "slow request: expected a result")
            slow_ids;
          (* shed count is visible to observability *)
          let st = Client.stats client in
          match List.assoc_opt "served_shed" st with
          | Some v -> Alcotest.(check bool) "shed counted" true (v >= 4.0)
          | None -> Alcotest.fail "stats missing served_shed"))

(* ------------------------------------------------------------------ *)
(* Error taxonomy through the protocol                                 *)
(* ------------------------------------------------------------------ *)

let test_error_taxonomy_preserved () =
  with_server ~workers:1 (fun _server client ->
      (* malformed hex: a clean per-contract Decode failure inside a
         well-formed result *)
      (match Client.analyze client ~hex:"60zz" () with
      | Client.Result r ->
          Alcotest.(check bool) "decode error present" true (r.P.error <> None);
          Alcotest.(check bool) "classified Decode" true
            (r.P.error_kind = Some P.Decode)
      | _ -> Alcotest.fail "malformed hex: expected a result response");
      (* deadline expiry: timed_out with the Timeout classification *)
      (match
         Client.analyze client ~timeout_s:0.02
           ~hex:(Hex.encode (jump_chain 20000)) ()
       with
      | Client.Result r ->
          Alcotest.(check bool) "timed out" true r.P.timed_out;
          Alcotest.(check bool) "classified Timeout" true
            (r.P.error_kind = Some P.Timeout)
      | _ -> Alcotest.fail "timeout: expected a result response");
      (* both failures were per-contract results: the connection lives *)
      Alcotest.(check bool) "connection alive after errors" true
        (Client.ping client))

let test_malformed_payload_answered () =
  (* hand-roll a valid frame carrying a junk analyze payload *)
  let server = Server.create ~workers:1 ~queue_depth:4 () in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Thread.create (fun () -> Server.serve_connection server a) () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.shutdown b Unix.SHUTDOWN_ALL with _ -> ());
      (try Unix.close b with _ -> ());
      (try Thread.join reader with _ -> ());
      (try Unix.close a with _ -> ());
      Server.stop server)
    (fun () ->
      Frame.write b ~kind:Proto.req_analyze ~id:9 "not a request";
      (match Frame.read b with
      | Ok (kind, id, payload) ->
          Alcotest.(check char) "error response" Proto.resp_error kind;
          Alcotest.(check int) "id echoed" 9 id;
          (match Proto.decode_error payload with
          | Some (Proto.Malformed _) -> ()
          | _ -> Alcotest.fail "expected malformed error")
      | Error _ -> Alcotest.fail "no response to malformed payload");
      (* the connection survives: a good request still works *)
      Frame.write b ~kind:Proto.req_ping ~id:10 "";
      match Frame.read b with
      | Ok (kind, id, _) ->
          Alcotest.(check char) "pong after malformed" Proto.resp_pong kind;
          Alcotest.(check int) "pong id" 10 id
      | Error _ -> Alcotest.fail "connection died after malformed payload")

let test_corrupt_stream_rejected () =
  (* byte garbage on the wire: the server answers one classified
     malformed error and drops the connection — never crashes *)
  let server = Server.create ~workers:1 ~queue_depth:4 () in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let reader = Thread.create (fun () -> Server.serve_connection server a) () in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.shutdown b Unix.SHUTDOWN_ALL with _ -> ());
      (try Unix.close b with _ -> ());
      (try Thread.join reader with _ -> ());
      (try Unix.close a with _ -> ());
      Server.stop server)
    (fun () ->
      let garbage = rand_bytes Frame.header_size in
      let rec write_all off =
        if off < String.length garbage then
          write_all
            (off + Unix.write_substring b garbage off (String.length garbage - off))
      in
      write_all 0;
      (match Frame.read b with
      | Ok (kind, _, payload) ->
          Alcotest.(check char) "error response" Proto.resp_error kind;
          (match Proto.decode_error payload with
          | Some (Proto.Malformed _) -> ()
          | _ -> Alcotest.fail "expected malformed error")
      | Error _ -> Alcotest.fail "no error response to garbage");
      (* the server stopped reading: its reader returns (the fd is
         ours to close — serve_connection never closes it) *)
      Thread.join reader;
      (try Unix.close a with _ -> ());
      match Frame.read b with
      | Error `Eof -> ()
      | Ok _ -> Alcotest.fail "server kept serving a corrupt stream"
      | Error (`Frame _) -> Alcotest.fail "expected clean close")

(* ------------------------------------------------------------------ *)
(* Warm state across requests                                          *)
(* ------------------------------------------------------------------ *)

let test_warm_state_across_requests () =
  P.cache_clear ();
  with_server ~workers:1 (fun _server client ->
      let hex = List.hd (corpus_hexes ~seed:63 ~size:3) in
      let get st k =
        match List.assoc_opt k st with
        | Some v -> v
        | None -> Alcotest.failf "stats missing %s" k
      in
      (* request 1: cold — pays the front end *)
      (match Client.analyze client ~hex () with
      | Client.Result r -> Alcotest.(check bool) "cold ok" true (r.P.error = None)
      | _ -> Alcotest.fail "cold: expected result");
      let st1 = Client.stats client in
      (* request 2: identical — answered by the back-end cache *)
      (match Client.analyze client ~hex () with
      | Client.Result r -> Alcotest.(check bool) "warm ok" true (r.P.error = None)
      | _ -> Alcotest.fail "warm: expected result");
      let st2 = Client.stats client in
      Alcotest.(check bool) "second request hit the back-end cache" true
        (get st2 "cache_be_hits" >= get st1 "cache_be_hits" +. 1.0);
      Alcotest.(check (float 0.0)) "second request: zero front-end misses"
        (get st1 "cache_fe_misses") (get st2 "cache_fe_misses");
      Alcotest.(check (float 0.0)) "second request: zero back-end misses"
        (get st1 "cache_be_misses") (get st2 "cache_be_misses");
      (* Datalog plans are compile-once: more requests on the same
         warm worker build no new plans *)
      (match Client.analyze client ~hex:"60006000f3" () with
      | Client.Result _ -> ()
      | _ -> Alcotest.fail "expected result");
      let st3 = Client.stats client in
      (match Client.analyze client ~hex:"60006000f3" () with
      | Client.Result _ -> ()
      | _ -> Alcotest.fail "expected result");
      let st4 = Client.stats client in
      Alcotest.(check (float 0.0)) "no per-request plan builds"
        (get st3 "datalog_plans_built") (get st4 "datalog_plans_built"))

let () =
  Alcotest.run "serve"
    [ ( "frame",
        [ Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "rejection (truncated/corrupt/oversized/fuzz)"
            `Quick test_frame_rejection ] );
      ( "proto",
        [ Alcotest.test_case "message codecs roundtrip + fuzz" `Quick
            test_proto_roundtrip ] );
      ( "end-to-end",
        [ Alcotest.test_case "request/response over socketpair" `Quick
            test_end_to_end;
          Alcotest.test_case "concurrent clients byte-identical" `Quick
            test_concurrent_clients;
          Alcotest.test_case "pipelining out of order" `Quick
            test_pipelining_out_of_order ] );
      ( "admission",
        [ Alcotest.test_case "queue full sheds with overloaded" `Quick
            test_queue_full_sheds ] );
      ( "errors",
        [ Alcotest.test_case "error_kind taxonomy preserved" `Quick
            test_error_taxonomy_preserved;
          Alcotest.test_case "malformed payload answered, connection lives"
            `Quick test_malformed_payload_answered;
          Alcotest.test_case "corrupt stream rejected cleanly" `Quick
            test_corrupt_stream_rejected ] );
      ( "warm-state",
        [ Alcotest.test_case "caches and plans warm across requests" `Quick
            test_warm_state_across_requests ] ) ]
