(* Unit and property tests for the 256-bit word arithmetic. *)

module U = Ethainter_word.Uint256
module H = Ethainter_word.Hex

let u = U.of_int
let ustr = U.of_string
let check_u msg a b = Alcotest.(check string) msg (U.to_hex a) (U.to_hex b)

let max_u256 = U.max_value
let two_255 = U.shift_left U.one 255

(* ---------- unit tests ---------- *)

let test_basic_constants () =
  check_u "zero" U.zero (u 0);
  check_u "one" U.one (u 1);
  Alcotest.(check bool) "zero is zero" true (U.is_zero U.zero);
  Alcotest.(check bool) "one not zero" false (U.is_zero U.one);
  check_u "max+1 wraps" (U.add max_u256 U.one) U.zero

let test_add_carry_chain () =
  (* force carries across every limb boundary *)
  let a = ustr "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff" in
  check_u "max + max" (U.add a a)
    (ustr "0xfffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe");
  let b = ustr "0xffffffffffffffff" in
  check_u "64-bit boundary carry" (U.add b U.one) (ustr "0x10000000000000000");
  let c = ustr "0xffffffffffffffffffffffffffffffff" in
  check_u "128-bit boundary carry" (U.add c U.one)
    (ustr "0x100000000000000000000000000000000");
  let d = ustr "0xffffffffffffffffffffffffffffffffffffffffffffffff" in
  check_u "192-bit boundary carry" (U.add d U.one)
    (ustr "0x1000000000000000000000000000000000000000000000000")

let test_sub_borrow () =
  check_u "0 - 1 wraps to max" (U.sub U.zero U.one) max_u256;
  check_u "simple" (U.sub (u 1000) (u 1)) (u 999);
  let b = ustr "0x10000000000000000" in
  check_u "borrow across limb" (U.sub b U.one) (ustr "0xffffffffffffffff")

let test_mul () =
  check_u "small" (U.mul (u 1234) (u 5678)) (u (1234 * 5678));
  check_u "by zero" (U.mul max_u256 U.zero) U.zero;
  check_u "by one" (U.mul max_u256 U.one) max_u256;
  (* (2^128)^2 = 2^256 = 0 mod 2^256 *)
  let two_128 = U.shift_left U.one 128 in
  check_u "2^128 squared wraps to 0" (U.mul two_128 two_128) U.zero;
  (* (2^255) * 2 wraps *)
  check_u "2^255 * 2 = 0" (U.mul two_255 (u 2)) U.zero;
  (* max * max = 1 mod 2^256 *)
  check_u "max*max" (U.mul max_u256 max_u256) U.one

let test_divmod () =
  let q, r = U.divmod (u 17) (u 5) in
  check_u "17/5" q (u 3);
  check_u "17%5" r (u 2);
  check_u "div by zero is 0 (EVM)" (U.div (u 7) U.zero) U.zero;
  check_u "mod by zero is 0 (EVM)" (U.rem (u 7) U.zero) U.zero;
  let big = ustr "0xde0b6b3a7640000" (* 1e18 *) in
  check_u "1e18 / 1e9" (U.div big (ustr "1000000000")) (ustr "1000000000")

let test_decimal_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) ("decimal " ^ s) s (U.to_decimal (U.of_decimal s)))
    [ "0"; "1"; "42"; "1000000000000000000";
      "115792089237316195423570985008687907853269984665640564039457584007913129639935" ]

let test_hex_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) ("hex " ^ s) s (U.to_hex (U.of_hex s)))
    [ "0x0"; "0x1"; "0xdeadbeef";
      "0xffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff" ]

let test_bytes_roundtrip () =
  let v = ustr "0x123456789abcdef0fedcba9876543210aabbccddeeff00112233445566778899" in
  check_u "bytes roundtrip" (U.of_bytes (U.to_bytes v)) v;
  Alcotest.(check int) "to_bytes length" 32 (String.length (U.to_bytes v));
  (* short strings are left-padded *)
  check_u "short bytes" (U.of_bytes "\x01\x02") (u 0x0102)

let test_shifts () =
  check_u "shl 4" (U.shift_left (u 0xf) 4) (u 0xf0);
  check_u "shl 256 = 0" (U.shift_left max_u256 256) U.zero;
  check_u "shr" (U.shift_right (u 0xf0) 4) (u 0xf);
  check_u "shr 255 of 2^255" (U.shift_right two_255 255) U.one;
  check_u "shl across limbs" (U.shift_left U.one 200)
    (ustr ("0x1" ^ String.make 50 '0'));
  (* sar: sign extension *)
  check_u "sar of negative" (U.shift_right_arith max_u256 8) max_u256;
  check_u "sar of positive" (U.shift_right_arith (u 256) 8) U.one

let test_bitwise () =
  check_u "and" (U.logand (u 0xff0f) (u 0x0fff)) (u 0x0f0f);
  check_u "or" (U.logor (u 0xf000) (u 0x000f)) (u 0xf00f);
  check_u "xor" (U.logxor (u 0xffff) (u 0x0ff0)) (u 0xf00f);
  check_u "not zero" (U.lognot U.zero) max_u256

let test_comparisons () =
  Alcotest.(check bool) "lt" true (U.lt (u 1) (u 2));
  Alcotest.(check bool) "unsigned: max > 1" true (U.gt max_u256 (u 1));
  (* signed: max_u256 is -1 *)
  Alcotest.(check bool) "slt: -1 < 1" true (U.slt max_u256 (u 1));
  Alcotest.(check bool) "sgt: 1 > -1" true (U.sgt (u 1) max_u256);
  Alcotest.(check bool) "slt: -2 < -1" true
    (U.slt (U.sub U.zero (u 2)) (U.sub U.zero U.one))

let test_signed_div () =
  let neg x = U.neg (u x) in
  check_u "sdiv -7 / 2 = -3 (trunc)" (U.sdiv (neg 7) (u 2)) (neg 3);
  check_u "sdiv 7 / -2 = -3" (U.sdiv (u 7) (neg 2)) (neg 3);
  check_u "sdiv -7 / -2 = 3" (U.sdiv (neg 7) (neg 2)) (u 3);
  check_u "smod -7 % 2 = -1 (sign of dividend)" (U.smod (neg 7) (u 2)) (neg 1);
  check_u "smod 7 % -2 = 1" (U.smod (u 7) (neg 2)) (u 1);
  check_u "sdiv by zero" (U.sdiv (neg 7) U.zero) U.zero

let test_exp () =
  check_u "2^10" (U.exp (u 2) (u 10)) (u 1024);
  check_u "x^0 = 1" (U.exp max_u256 U.zero) U.one;
  check_u "0^0 = 1 (EVM)" (U.exp U.zero U.zero) U.one;
  check_u "10^18" (U.exp (u 10) (u 18)) (ustr "1000000000000000000");
  (* 2^256 wraps to 0 *)
  check_u "2^256 = 0" (U.exp (u 2) (u 256)) U.zero

let test_addmod_mulmod () =
  check_u "addmod basic" (U.addmod (u 10) (u 10) (u 8)) (u 4);
  check_u "addmod with wrap: (max + 2) mod 10" (U.addmod max_u256 (u 2) (u 10))
    (* max = 2^256-1; 2^256+1 mod 10: 2^256 mod 10 = 6, so 7 *)
    (u 7);
  check_u "mulmod basic" (U.mulmod (u 10) (u 10) (u 8)) (u 4);
  check_u "addmod by zero" (U.addmod (u 1) (u 1) U.zero) U.zero;
  check_u "mulmod by zero" (U.mulmod (u 2) (u 2) U.zero) U.zero;
  (* mulmod exceeding 256 bits: max * max mod (max) = 0 *)
  check_u "max*max mod max" (U.mulmod max_u256 max_u256 max_u256) U.zero;
  (* max * max mod (max-1): max = 1 mod (max-1), so result 1 *)
  check_u "max*max mod (max-1)"
    (U.mulmod max_u256 max_u256 (U.sub max_u256 U.one))
    U.one

let test_signextend_byte () =
  (* sign-extend byte 0 of 0xff -> all ones *)
  check_u "signextend 0 0xff" (U.signextend U.zero (u 0xff)) max_u256;
  check_u "signextend 0 0x7f" (U.signextend U.zero (u 0x7f)) (u 0x7f);
  check_u "signextend 1 0x80ff" (U.signextend U.one (u 0x80ff))
    (U.logor (U.shift_left max_u256 16) (u 0x80ff));
  (* BYTE: index from most significant *)
  check_u "byte 31 is LSB" (U.byte (u 31) (u 0xab)) (u 0xab);
  check_u "byte 30" (U.byte (u 30) (u 0xab00)) (u 0xab);
  check_u "byte 0 of small value" (U.byte (u 0) (u 0xab)) U.zero;
  check_u "byte out of range" (U.byte (u 32) max_u256) U.zero

let test_num_bits () =
  Alcotest.(check int) "bits of 0" 0 (U.num_bits U.zero);
  Alcotest.(check int) "bits of 1" 1 (U.num_bits U.one);
  Alcotest.(check int) "bits of 255" 8 (U.num_bits (u 255));
  Alcotest.(check int) "bits of 256" 9 (U.num_bits (u 256));
  Alcotest.(check int) "bits of max" 256 (U.num_bits max_u256)

let test_hex_module () =
  Alcotest.(check string) "decode/encode" "deadbeef"
    (H.encode (H.decode "0xDEADBEEF"));
  Alcotest.(check string) "empty" "" (H.encode (H.decode ""));
  Alcotest.check_raises "odd digits" (Invalid_argument "Hex.decode: odd number of digits")
    (fun () -> ignore (H.decode "0xabc"))

(* ---------- differential suite vs the retained reference ---------- *)

(* [Uint256_ref] is the pre-PR-10 boxed-int64 implementation, kept
   verbatim for exactly this purpose: every operation of the new
   int-limb representation is replayed against it over seeded random
   vectors. Values cross the module boundary as 32-byte strings so the
   two incompatible [t]s never meet. *)

module R = Ethainter_word.Uint256_ref

(* Deterministic vector generator biased toward the shapes that break
   word arithmetic: dense random words, sparse bytes, 0xff runs
   (maximal carry/borrow chains), single set bits (limb boundaries),
   2^k - 1 masks (including max_value at k = 256), and small ints. *)
let rand_bytes st =
  match Random.State.int st 8 with
  | 0 | 1 | 2 -> String.init 32 (fun _ -> Char.chr (Random.State.int st 256))
  | 3 ->
      let b = Bytes.make 32 '\000' in
      for _ = 1 to 1 + Random.State.int st 3 do
        Bytes.set b (Random.State.int st 32)
          (Char.chr (Random.State.int st 256))
      done;
      Bytes.to_string b
  | 4 ->
      let b = Bytes.make 32 '\000' in
      let start = Random.State.int st 32 in
      let len = 1 + Random.State.int st (32 - start) in
      Bytes.fill b start len '\xff';
      Bytes.to_string b
  | 5 ->
      let b = Bytes.make 32 '\000' in
      let k = Random.State.int st 256 in
      Bytes.set b (31 - (k / 8)) (Char.chr (1 lsl (k mod 8)));
      Bytes.to_string b
  | 6 ->
      let k = 1 + Random.State.int st 256 in
      let b = Bytes.make 32 '\000' in
      let full = k / 8 and part = k mod 8 in
      for i = 0 to full - 1 do
        Bytes.set b (31 - i) '\xff'
      done;
      if part > 0 then Bytes.set b (31 - full) (Char.chr ((1 lsl part) - 1));
      Bytes.to_string b
  | _ ->
      let v = Random.State.int st 0x10000 in
      let b = Bytes.make 32 '\000' in
      Bytes.set b 31 (Char.chr (v land 0xff));
      Bytes.set b 30 (Char.chr (v lsr 8));
      Bytes.to_string b

(* Directed pairs no random draw should be trusted to hit: full-width
   wraps, the sign boundary, and 128-bit-limb edges. *)
let directed_pairs =
  let two_128 = U.shift_left U.one 128 in
  let m = U.to_bytes U.max_value
  and z = U.to_bytes U.zero
  and o = U.to_bytes U.one
  and t255 = U.to_bytes two_255
  and t128 = U.to_bytes two_128
  and t128m1 = U.to_bytes (U.sub two_128 U.one) in
  [ (m, m); (m, o); (m, z); (z, o); (t255, t255); (t255, m); (t128, t128);
    (t128m1, o); (t128m1, t128m1); (o, m) ]

let diff_check i sh e sa sb sm =
  let ua = U.of_bytes sa and ub = U.of_bytes sb and um = U.of_bytes sm in
  let ra = R.of_bytes sa and rb = R.of_bytes sb and rm = R.of_bytes sm in
  let chk name x y =
    if not (String.equal (U.to_hex_padded x) (R.to_hex_padded y)) then
      Alcotest.failf "vector %d %s: new=%s ref=%s  [a=%s b=%s]" i name
        (U.to_hex_padded x) (R.to_hex_padded y) (U.to_hex ua) (U.to_hex ub)
  in
  let chkb name x y =
    if x <> y then
      Alcotest.failf "vector %d %s: new=%b ref=%b  [a=%s b=%s]" i name x y
        (U.to_hex ua) (U.to_hex ub)
  in
  let chki name x y =
    if x <> y then
      Alcotest.failf "vector %d %s: new=%d ref=%d  [a=%s]" i name x y
        (U.to_hex ua)
  in
  chk "add" (U.add ua ub) (R.add ra rb);
  chk "sub" (U.sub ua ub) (R.sub ra rb);
  chk "mul" (U.mul ua ub) (R.mul ra rb);
  chk "neg" (U.neg ua) (R.neg ra);
  chk "div" (U.div ua ub) (R.div ra rb);
  chk "rem" (U.rem ua ub) (R.rem ra rb);
  chk "sdiv" (U.sdiv ua ub) (R.sdiv ra rb);
  chk "smod" (U.smod ua ub) (R.smod ra rb);
  chk "addmod" (U.addmod ua ub um) (R.addmod ra rb rm);
  chk "mulmod" (U.mulmod ua ub um) (R.mulmod ra rb rm);
  chk "exp" (U.exp ua (U.of_int e)) (R.exp ra (R.of_int e));
  chk "and" (U.logand ua ub) (R.logand ra rb);
  chk "or" (U.logor ua ub) (R.logor ra rb);
  chk "xor" (U.logxor ua ub) (R.logxor ra rb);
  chk "not" (U.lognot ua) (R.lognot ra);
  chk "shl" (U.shift_left ua sh) (R.shift_left ra sh);
  chk "shr" (U.shift_right ua sh) (R.shift_right ra sh);
  chk "sar" (U.shift_right_arith ua sh) (R.shift_right_arith ra sh);
  chk "byte-word-index" (U.byte ub ua) (R.byte rb ra);
  chk "byte"
    (U.byte (U.of_int (sh mod 33)) ua)
    (R.byte (R.of_int (sh mod 33)) ra);
  chk "signextend-word-index" (U.signextend ub ua) (R.signextend rb ra);
  chk "signextend"
    (U.signextend (U.of_int (sh mod 33)) ua)
    (R.signextend (R.of_int (sh mod 33)) ra);
  chkb "lt" (U.lt ua ub) (R.lt ra rb);
  chkb "slt" (U.slt ua ub) (R.slt ra rb);
  chkb "sgt" (U.sgt ua ub) (R.sgt ra rb);
  chkb "equal" (U.equal ua ub) (R.equal ra rb);
  chkb "is_neg" (U.is_neg ua) (R.is_neg ra);
  chki "compare-sign"
    (Stdlib.compare (U.compare ua ub) 0)
    (Stdlib.compare (R.compare ra rb) 0);
  chki "num_bits" (U.num_bits ua) (R.num_bits ra);
  chkb "fits_int" (U.fits_int ua) (R.fits_int ra);
  (match (U.to_int_opt ua, R.to_int_opt ra) with
  | Some x, Some y -> chki "to_int" x y
  | None, None -> ()
  | _ -> Alcotest.failf "vector %d to_int_opt presence mismatch" i);
  if i land 127 = 0 then begin
    if not (String.equal (U.to_decimal ua) (R.to_decimal ra)) then
      Alcotest.failf "vector %d to_decimal mismatch" i;
    if not (String.equal (U.to_hex ua) (R.to_hex ra)) then
      Alcotest.failf "vector %d to_hex mismatch" i
  end

let test_differential () =
  List.iteri
    (fun i (sa, sb) ->
      diff_check (-i - 1) (i * 37 mod 300) (i mod 9) sa sb sa)
    directed_pairs;
  let st = Random.State.make [| 0xE7A1; 0x2026 |] in
  for i = 1 to 10_000 do
    let sa = rand_bytes st and sb = rand_bytes st and sm = rand_bytes st in
    diff_check i (Random.State.int st 300) (Random.State.int st 300) sa sb sm
  done

(* ---------- destructive (_into) variants ---------- *)

(* The interpreter's operand stack reuses slots, so every [_into] op
   must tolerate full aliasing: dst == a, dst == b, and all three the
   same word. Each case is checked against the pure op. *)
let test_into_aliasing () =
  let st = Random.State.make [| 0xA11A5 |] in
  let binops =
    [ ("add", U.add, U.add_into); ("sub", U.sub, U.sub_into);
      ("mul", U.mul, U.mul_into); ("and", U.logand, U.logand_into);
      ("or", U.logor, U.logor_into); ("xor", U.logxor, U.logxor_into) ]
  in
  for i = 1 to 2_000 do
    let a = U.of_bytes (rand_bytes st) and b = U.of_bytes (rand_bytes st) in
    List.iter
      (fun (name, pure, into) ->
        let expect = U.to_hex_padded (pure a b) in
        let chk tag got =
          if not (String.equal (U.to_hex_padded got) expect) then
            Alcotest.failf "vector %d %s_into/%s: got %s want %s  [a=%s b=%s]"
              i name tag (U.to_hex_padded got) expect (U.to_hex a)
              (U.to_hex b)
        in
        let d = U.create () in
        into d a b;
        chk "fresh-dst" d;
        let a' = U.copy a in
        into a' a' b;
        chk "dst==a" a';
        let b' = U.copy b in
        into b' a b';
        chk "dst==b" b';
        let self = U.to_hex_padded (pure a a) in
        let c = U.copy a in
        into c c c;
        if not (String.equal (U.to_hex_padded c) self) then
          Alcotest.failf "vector %d %s_into/all-aliased: got %s want %s" i
            name (U.to_hex_padded c) self)
      binops;
    let n = Random.State.int st 300 in
    let chk_shift name pure into =
      let expect = U.to_hex_padded (pure a n) in
      let d = U.create () in
      into d a n;
      let a' = U.copy a in
      into a' a' n;
      if
        (not (String.equal (U.to_hex_padded d) expect))
        || not (String.equal (U.to_hex_padded a') expect)
      then
        Alcotest.failf "vector %d %s_into by %d: got %s/%s want %s" i name n
          (U.to_hex_padded d) (U.to_hex_padded a') expect
    in
    chk_shift "shl" U.shift_left U.shift_left_into;
    chk_shift "shr" U.shift_right U.shift_right_into;
    chk_shift "sar" U.shift_right_arith U.shift_right_arith_into;
    let expect = U.to_hex_padded (U.lognot a) in
    let d = U.create () in
    U.lognot_into d a;
    let a' = U.copy a in
    U.lognot_into a' a';
    if
      (not (String.equal (U.to_hex_padded d) expect))
      || not (String.equal (U.to_hex_padded a') expect)
    then Alcotest.failf "vector %d lognot_into mismatch" i
  done

(* In-place byte I/O: what MLOAD/MSTORE/CALLDATALOAD ride on. *)
let test_scratch_bytes () =
  let st = Random.State.make [| 0xB17E5 |] in
  for i = 1 to 1_000 do
    let w = U.of_bytes (rand_bytes st) in
    let off = Random.State.int st 9 in
    let buf =
      Bytes.init (off + 40) (fun _ -> Char.chr (Random.State.int st 256))
    in
    U.store_be w buf off;
    let d = U.create () in
    U.load_be_into d buf off;
    if not (U.equal d w) then
      Alcotest.failf "vector %d store_be/load_be_into roundtrip" i;
    if not (String.equal (Bytes.sub_string buf off 32) (U.to_bytes w)) then
      Alcotest.failf "vector %d store_be bytes disagree with to_bytes" i;
    (* CALLDATALOAD semantics: out-of-range bytes read as zero *)
    let len = Random.State.int st 48 in
    let data = String.init len (fun _ -> Char.chr (Random.State.int st 256)) in
    let o2 = Random.State.int st 64 in
    let d2 = U.create () in
    U.load_be_padded d2 data o2;
    let expect =
      U.of_bytes
        (String.init 32 (fun k ->
             if o2 + k < len then data.[o2 + k] else '\000'))
    in
    if not (U.equal d2 expect) then
      Alcotest.failf "vector %d load_be_padded off=%d len=%d: got %s want %s"
        i o2 len (U.to_hex d2) (U.to_hex expect);
    let t = U.create () in
    U.blit w t;
    if not (U.equal t w) then Alcotest.failf "vector %d blit" i;
    U.set_zero t;
    if not (U.is_zero t) then Alcotest.failf "vector %d set_zero" i;
    let v = Random.State.int st 1_000_000 in
    U.set_int t v;
    if not (U.equal t (U.of_int v)) then Alcotest.failf "vector %d set_int" i;
    U.set_bool t (v land 1 = 1);
    if not (U.equal t (U.of_bool (v land 1 = 1))) then
      Alcotest.failf "vector %d set_bool" i
  done

(* ---------- hash quality regression ---------- *)

(* The storage-key hashtables in [Ethainter_evm.State] are keyed by
   [Uint256.hash]. Contract storage keys are routinely of the form
   [base + k] or [k * 2^n] (mapping slots, packed arrays), so a hash
   that ignores high limbs degrades those tables to linked lists.
   Each family below collapses to O(1) distinct hashes under a
   low-limb-only hash; assert near-perfect distinctness and bounded
   bucket load instead. *)
let test_hash_quality () =
  let families =
    [ ("sequential", u);
      ("k<<64", fun k -> U.shift_left (u k) 64);
      ("k<<96", fun k -> U.shift_left (u k) 96);
      ("k<<128", fun k -> U.shift_left (u k) 128);
      ("k<<224", fun k -> U.shift_left (u k) 224);
      ("k<<128|7", fun k -> U.logor (U.shift_left (u k) 128) (u 7)) ]
  in
  List.iter
    (fun (name, f) ->
      let n = 4096 in
      let nbuckets = 1024 in
      let distinct = Hashtbl.create n in
      let buckets = Array.make nbuckets 0 in
      for k = 0 to n - 1 do
        let h = U.hash (f k) in
        if h < 0 then Alcotest.failf "%s: negative hash %d" name h;
        Hashtbl.replace distinct h ();
        let b = h land (nbuckets - 1) in
        buckets.(b) <- buckets.(b) + 1
      done;
      let d = Hashtbl.length distinct in
      if d < n * 99 / 100 then
        Alcotest.failf "%s: only %d/%d distinct hashes" name d n;
      let maxload = Array.fold_left max 0 buckets in
      (* expected load is 4; a low-limb-only hash pins everything on
         one bucket.  16 leaves ample head-room for an honest mixer. *)
      if maxload > 16 then
        Alcotest.failf "%s: max bucket load %d (expected ~4)" name maxload)
    families

(* ---------- interning ---------- *)

let test_interning () =
  let phys msg b = Alcotest.(check bool) msg true b in
  phys "of_int shares 0..255" (U.of_int 5 == U.of_int 5);
  phys "of_int 0" (U.of_int 0 == U.zero);
  phys "of_int 1" (U.of_int 1 == U.one);
  phys "of_int 255 shares" (U.of_int 255 == U.of_int 255);
  phys "of_bool true" (U.of_bool true == U.one);
  phys "of_bool false" (U.of_bool false == U.zero);
  phys "of_int64 hits the table" (U.of_int64 200L == U.of_int 200);
  phys "of_bytes single byte" (U.of_bytes "\x2a" == U.of_int 42);
  phys "byte op returns interned" (U.byte (u 31) (u 0xab) == U.of_int 0xab);
  (* owned words are fresh: mutating one must not corrupt constants *)
  let c = U.copy (U.of_int 5) in
  phys "copy is a fresh block" (not (c == U.of_int 5));
  U.set_int c 9;
  check_u "set_int on the copy" c (u 9);
  check_u "shared constant unharmed" (U.of_int 5) (ustr "5");
  let d = U.create () in
  phys "create starts at zero" (U.is_zero d);
  phys "create is owned, not the interned zero" (not (d == U.zero))

(* ---------- properties ---------- *)

let gen_u256 =
  QCheck.Gen.(
    map4
      (fun a b c d -> U.make a b c d)
      (map Int64.of_int int) (map Int64.of_int int) (map Int64.of_int int)
      (map Int64.of_int int))

let arb_u256 =
  QCheck.make gen_u256 ~print:U.to_hex

let prop name count arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb law)

let properties =
  [ prop "add commutative" 500
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) -> U.equal (U.add a b) (U.add b a));
    prop "add associative" 500
      (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, c) ->
        U.equal (U.add (U.add a b) c) (U.add a (U.add b c)));
    prop "mul commutative" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) -> U.equal (U.mul a b) (U.mul b a));
    prop "mul associative" 200
      (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, c) ->
        U.equal (U.mul (U.mul a b) c) (U.mul a (U.mul b c)));
    prop "distributivity" 200
      (QCheck.triple arb_u256 arb_u256 arb_u256)
      (fun (a, b, c) ->
        U.equal (U.mul a (U.add b c)) (U.add (U.mul a b) (U.mul a c)));
    prop "sub inverse of add" 500
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) -> U.equal (U.sub (U.add a b) b) a);
    prop "neg involutive" 500 arb_u256 (fun a -> U.equal (U.neg (U.neg a)) a);
    prop "divmod invariant: a = q*b + r, r < b" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        if U.is_zero b then true
        else
          let q, r = U.divmod a b in
          U.equal a (U.add (U.mul q b) r) && U.lt r b);
    prop "shift_left/right by same amount" 300
      (QCheck.pair arb_u256 QCheck.(int_bound 255))
      (fun (a, n) ->
        (* shifting left then right keeps the low (256-n) bits *)
        let masked =
          if n = 0 then a else U.logand a (U.sub (U.shift_left U.one (256 - n)) U.one)
        in
        U.equal (U.shift_right (U.shift_left a n) n) masked);
    prop "shl n = mul 2^n" 300
      (QCheck.pair arb_u256 QCheck.(int_bound 255))
      (fun (a, n) ->
        U.equal (U.shift_left a n) (U.mul a (U.exp (U.of_int 2) (U.of_int n))));
    prop "compare total order vs decimal" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        let c = U.compare a b in
        let dc =
          let da = U.to_decimal a and db = U.to_decimal b in
          compare (String.length da, da) (String.length db, db)
        in
        (c < 0) = (dc < 0) && (c = 0) = (dc = 0));
    prop "hex roundtrip" 300 arb_u256
      (fun a -> U.equal (U.of_hex (U.to_hex a)) a);
    prop "decimal roundtrip" 100 arb_u256
      (fun a -> U.equal (U.of_decimal (U.to_decimal a)) a);
    prop "bytes roundtrip" 300 arb_u256
      (fun a -> U.equal (U.of_bytes (U.to_bytes a)) a);
    prop "addmod matches add for small" 300
      (QCheck.pair QCheck.(int_bound 100000) QCheck.(int_bound 100000))
      (fun (a, b) ->
        U.equal
          (U.addmod (u a) (u b) (u 1000003))
          (u ((a + b) mod 1000003)));
    prop "mulmod matches mul for small" 300
      (QCheck.pair QCheck.(int_bound 100000) QCheck.(int_bound 100000))
      (fun (a, b) ->
        U.equal
          (U.mulmod (u a) (u b) (u 1000003))
          (u (a * b mod 1000003)));
    prop "lognot . lognot = id" 300 arb_u256
      (fun a -> U.equal (U.lognot (U.lognot a)) a);
    prop "de morgan" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        U.equal
          (U.lognot (U.logand a b))
          (U.logor (U.lognot a) (U.lognot b)));
    prop "slt antisymmetric-ish" 300
      (QCheck.pair arb_u256 arb_u256)
      (fun (a, b) ->
        if U.equal a b then (not (U.slt a b)) && not (U.sgt a b)
        else U.slt a b <> U.sgt a b);
  ]

let () =
  Alcotest.run "uint256"
    [ ( "unit",
        [ Alcotest.test_case "constants" `Quick test_basic_constants;
          Alcotest.test_case "add carries" `Quick test_add_carry_chain;
          Alcotest.test_case "sub borrows" `Quick test_sub_borrow;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "divmod" `Quick test_divmod;
          Alcotest.test_case "decimal roundtrip" `Quick test_decimal_roundtrip;
          Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
          Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "signed division" `Quick test_signed_div;
          Alcotest.test_case "exp" `Quick test_exp;
          Alcotest.test_case "addmod/mulmod" `Quick test_addmod_mulmod;
          Alcotest.test_case "signextend/byte" `Quick test_signextend_byte;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "hex module" `Quick test_hex_module ] );
      ( "differential",
        [ Alcotest.test_case "10k seeded vectors vs reference impl" `Quick
            test_differential;
          Alcotest.test_case "_into aliasing vs pure ops" `Quick
            test_into_aliasing;
          Alcotest.test_case "in-place byte I/O" `Quick test_scratch_bytes ] );
      ( "representation",
        [ Alcotest.test_case "hash mixes all limbs" `Quick test_hash_quality;
          Alcotest.test_case "small-constant interning" `Quick test_interning ]
      );
      ("properties", properties) ]
